// Differential verification of the RoiMetadata wire format
// (roi/metadata.h): parse(serialize(m)) == m must hold BIT-EXACTLY for
// everything the agent can produce — random motion fields, SKIP-heavy
// frames, empty and degenerate hulls — and serialize must be a pure
// function of the value (re-serializing the parse yields identical
// bytes). The sidecar rides the uplink next to the golden-checksummed
// bitstream; a single unstable byte here would silently change
// bandwidth accounting between runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codec/encoder.h"
#include "roi/metadata.h"
#include "util/rng.h"
#include "video/frame.h"

namespace dive::roi {
namespace {

RoiMetadata random_metadata(std::uint64_t seed, bool skip_heavy) {
  util::Rng rng(seed);
  RoiMetadata m;
  m.mb_cols = rng.uniform_int(1, 14);
  m.mb_rows = rng.uniform_int(1, 9);
  const std::size_t mbs =
      static_cast<std::size_t>(m.mb_cols) * static_cast<std::size_t>(m.mb_rows);
  m.mvs.resize(mbs);
  m.skip.resize(mbs);
  for (std::size_t i = 0; i < mbs; ++i) {
    m.mvs[i] = {rng.uniform_int(-64, 64), rng.uniform_int(-64, 64)};
    m.skip[i] = static_cast<std::uint8_t>(
        skip_heavy ? (rng.uniform_int(0, 9) > 0) : rng.uniform_int(0, 1));
  }
  const int regions = rng.uniform_int(0, 4);
  for (int r = 0; r < regions; ++r) {
    RoiRegion region;
    region.mean_mv = {rng.uniform_int(-32, 32), rng.uniform_int(-32, 32)};
    const int verts = rng.uniform_int(3, 9);
    for (int v = 0; v < verts; ++v)
      region.hull.push_back({rng.uniform_int(-100, 4000),
                             rng.uniform_int(-100, 2500)});
    m.regions.push_back(std::move(region));
  }
  return m;
}

void expect_roundtrip(const RoiMetadata& m) {
  const std::vector<std::uint8_t> bytes = m.serialize();
  const auto parsed = RoiMetadata::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, m);
  // Serialization is canonical: the parse re-serializes byte-identically.
  EXPECT_EQ(parsed->serialize(), bytes);
}

TEST(RoiMetadataRoundtrip, RandomMotionFields) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed)
    expect_roundtrip(random_metadata(seed, false));
}

TEST(RoiMetadataRoundtrip, SkipHeavyFrames) {
  for (std::uint64_t seed = 100; seed <= 120; ++seed)
    expect_roundtrip(random_metadata(seed, true));
}

TEST(RoiMetadataRoundtrip, EmptyAndDegenerateShapes) {
  // Intra sidecar: grid only, no field, no skips, no regions.
  RoiMetadata intra;
  intra.mb_cols = 12;
  intra.mb_rows = 7;
  expect_roundtrip(intra);

  // Degenerate hulls (0 / 1 / 2 vertices) must survive verbatim — the
  // gate ignores them, but the wire format carries what it is given.
  RoiMetadata degenerate;
  degenerate.mb_cols = 2;
  degenerate.mb_rows = 2;
  degenerate.regions.push_back({{}, {3, -1}});
  degenerate.regions.push_back({{{160, 320}}, {0, 0}});
  degenerate.regions.push_back({{{0, 0}, {-16, 512}}, {-7, 7}});
  expect_roundtrip(degenerate);

  // Zero-size grid (nothing to ship) still round-trips.
  expect_roundtrip(RoiMetadata{});
}

TEST(RoiMetadataRoundtrip, FromEncodedFrames) {
  // Real encoder output: the intra frame ships an empty field; the inter
  // frame ships the coded MVs and skip flags, which must round-trip and
  // match what the encoder reported.
  codec::Encoder enc({.width = 96, .height = 48});
  video::Frame a(96, 48);
  util::Rng rng(7);
  for (auto& px : a.y.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const codec::EncodedFrame intra = enc.encode(a, 20);
  const RoiMetadata mi = from_encoded(intra, 96, 48);
  EXPECT_FALSE(mi.has_motion());
  EXPECT_EQ(mi.width(), 96);
  expect_roundtrip(mi);

  const codec::EncodedFrame inter = enc.encode(a, 20);
  const RoiMetadata mp = from_encoded(inter, 96, 48);
  ASSERT_TRUE(mp.has_motion());
  EXPECT_EQ(mp.mvs.size(), inter.motion.mvs.size());
  EXPECT_EQ(mp.skip, inter.skip);
  expect_roundtrip(mp);
}

TEST(RoiMetadataRoundtrip, TruncatedBytesRejected) {
  const RoiMetadata m = random_metadata(42, false);
  const std::vector<std::uint8_t> bytes = m.serialize();
  // Every proper prefix either fails to parse or (if it happens to be
  // self-delimiting) parses to something that is NOT m — no silent
  // truncation into a matching value.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto parsed =
        RoiMetadata::parse(std::span(bytes.data(), cut));
    if (parsed.has_value()) EXPECT_NE(*parsed, m) << "cut=" << cut;
  }
}

// --- Varint hardening: the parser accepts exactly the canonical wire
// language, so encoding is a bijection and the sidecar digest check
// cannot be spoofed by re-encoding the same value differently. ---

std::vector<std::uint8_t> header_plus(std::vector<std::uint8_t> tail) {
  // Magic + version, then caller-provided bytes.
  std::vector<std::uint8_t> bytes = {0x52, 0x01};
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  return bytes;
}

TEST(RoiMetadataHardening, OverlongVarintRejected) {
  // mb_cols = 1 encoded non-canonically as 81 00 ("1 + continuation,
  // then an empty terminator"). The value is representable in one byte,
  // so the two-byte spelling must be rejected, not silently accepted.
  const auto bytes = header_plus({0x81, 0x00, /*rows*/ 0x01, /*flags*/ 0x00,
                                  /*regions*/ 0x00});
  EXPECT_FALSE(RoiMetadata::parse(bytes).has_value());

  // Same value, canonical spelling: accepted.
  const auto canonical =
      header_plus({0x01, 0x01, 0x00, 0x00});
  EXPECT_TRUE(RoiMetadata::parse(canonical).has_value());
}

TEST(RoiMetadataHardening, ElevenByteVarintRejected) {
  // Ten continuation bytes then a terminator: one byte past the longest
  // legal (10-byte) encoding of a uint64.
  std::vector<std::uint8_t> tail(11, 0x80);
  tail.back() = 0x01;
  tail.insert(tail.end(), {0x01, 0x00, 0x00});
  EXPECT_FALSE(RoiMetadata::parse(header_plus(tail)).has_value());
}

TEST(RoiMetadataHardening, TenByteOverflowRejected) {
  // A maximal 10-byte varint whose 10th byte carries more than bit 64:
  // the value does not fit uint64, so accepting it would silently
  // truncate (and two spellings would collide).
  std::vector<std::uint8_t> tail(9, 0xFF);
  tail.push_back(0x02);  // bit 65
  tail.insert(tail.end(), {0x01, 0x00, 0x00});
  EXPECT_FALSE(RoiMetadata::parse(header_plus(tail)).has_value());
}

TEST(RoiMetadataHardening, NonZeroSkipPaddingRejected) {
  // 3x1 grid with skip flags: 3 payload bits leave 5 padding bits in the
  // single skip byte. Nonzero padding parses to the same value as zero
  // padding — a digest-colliding second spelling — so it must reject.
  RoiMetadata m;
  m.mb_cols = 3;
  m.mb_rows = 1;
  m.skip = {1, 0, 1};
  std::vector<std::uint8_t> bytes = m.serialize();
  const auto baseline = RoiMetadata::parse(bytes);
  ASSERT_TRUE(baseline.has_value());

  // The skip byte is the last-but-one (region count 0 trails it).
  const std::size_t skip_byte = bytes.size() - 2;
  ASSERT_EQ(bytes[skip_byte], 0x05u);  // LSB-first: 1,0,1
  bytes[skip_byte] |= 0x20;            // flip a padding bit
  EXPECT_FALSE(RoiMetadata::parse(bytes).has_value());
}

TEST(RoiMetadataHardening, OutOfInt32MotionRejected) {
  // mean_mv.dx = 2^32 as a zigzag varint: in-range for the varint layer
  // but wider than the int32 the wire schema stores — must reject, not
  // truncate (truncation would re-serialize to different bytes and break
  // the fix-point).
  const auto bytes = header_plus({/*cols*/ 0x01, /*rows*/ 0x01,
                                  /*flags*/ 0x00, /*regions*/ 0x01,
                                  // zigzag(2^32) = 2^33 varint-encoded:
                                  0x80, 0x80, 0x80, 0x80, 0x20,
                                  /*dy*/ 0x00, /*points*/ 0x00});
  EXPECT_FALSE(RoiMetadata::parse(bytes).has_value());
}

TEST(RoiMetadataHardening, HullAccumulationOverflowRejected) {
  // Two vertices whose deltas accumulate past INT32_MAX: each delta is a
  // legal varint, but the resulting vertex cannot be represented, so the
  // parse must reject instead of wrapping.
  auto zz = [](std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
  };
  std::vector<std::uint8_t> tail = {/*cols*/ 0x01, /*rows*/ 0x01,
                                    /*flags*/ 0x00, /*regions*/ 0x01,
                                    /*mean_mv*/ 0x00, 0x00, /*points*/ 0x02};
  auto put = [&tail](std::uint64_t v) {
    while (v >= 0x80) {
      tail.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    tail.push_back(static_cast<std::uint8_t>(v));
  };
  // First vertex at INT32_MAX, second steps +2 past the domain.
  put(zz(2147483647));  // x0
  put(zz(0));           // y0
  put(zz(2));           // dx -> 2^31 + 1, out of range
  put(zz(0));           // dy
  EXPECT_FALSE(RoiMetadata::parse(header_plus(tail)).has_value());
}

TEST(RoiMetadataHardening, AcceptedBytesAreAFixPoint) {
  // decode -> encode -> decode: for every accepted input in this suite's
  // random family, serialize(parse(b)) == b byte-for-byte.
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    const std::vector<std::uint8_t> bytes =
        random_metadata(seed, seed % 2 == 0).serialize();
    const auto parsed = RoiMetadata::parse(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->serialize(), bytes) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dive::roi
