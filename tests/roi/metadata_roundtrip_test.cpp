// Differential verification of the RoiMetadata wire format
// (roi/metadata.h): parse(serialize(m)) == m must hold BIT-EXACTLY for
// everything the agent can produce — random motion fields, SKIP-heavy
// frames, empty and degenerate hulls — and serialize must be a pure
// function of the value (re-serializing the parse yields identical
// bytes). The sidecar rides the uplink next to the golden-checksummed
// bitstream; a single unstable byte here would silently change
// bandwidth accounting between runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codec/encoder.h"
#include "roi/metadata.h"
#include "util/rng.h"
#include "video/frame.h"

namespace dive::roi {
namespace {

RoiMetadata random_metadata(std::uint64_t seed, bool skip_heavy) {
  util::Rng rng(seed);
  RoiMetadata m;
  m.mb_cols = rng.uniform_int(1, 14);
  m.mb_rows = rng.uniform_int(1, 9);
  const std::size_t mbs =
      static_cast<std::size_t>(m.mb_cols) * static_cast<std::size_t>(m.mb_rows);
  m.mvs.resize(mbs);
  m.skip.resize(mbs);
  for (std::size_t i = 0; i < mbs; ++i) {
    m.mvs[i] = {rng.uniform_int(-64, 64), rng.uniform_int(-64, 64)};
    m.skip[i] = static_cast<std::uint8_t>(
        skip_heavy ? (rng.uniform_int(0, 9) > 0) : rng.uniform_int(0, 1));
  }
  const int regions = rng.uniform_int(0, 4);
  for (int r = 0; r < regions; ++r) {
    RoiRegion region;
    region.mean_mv = {rng.uniform_int(-32, 32), rng.uniform_int(-32, 32)};
    const int verts = rng.uniform_int(3, 9);
    for (int v = 0; v < verts; ++v)
      region.hull.push_back({rng.uniform_int(-100, 4000),
                             rng.uniform_int(-100, 2500)});
    m.regions.push_back(std::move(region));
  }
  return m;
}

void expect_roundtrip(const RoiMetadata& m) {
  const std::vector<std::uint8_t> bytes = m.serialize();
  const auto parsed = RoiMetadata::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, m);
  // Serialization is canonical: the parse re-serializes byte-identically.
  EXPECT_EQ(parsed->serialize(), bytes);
}

TEST(RoiMetadataRoundtrip, RandomMotionFields) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed)
    expect_roundtrip(random_metadata(seed, false));
}

TEST(RoiMetadataRoundtrip, SkipHeavyFrames) {
  for (std::uint64_t seed = 100; seed <= 120; ++seed)
    expect_roundtrip(random_metadata(seed, true));
}

TEST(RoiMetadataRoundtrip, EmptyAndDegenerateShapes) {
  // Intra sidecar: grid only, no field, no skips, no regions.
  RoiMetadata intra;
  intra.mb_cols = 12;
  intra.mb_rows = 7;
  expect_roundtrip(intra);

  // Degenerate hulls (0 / 1 / 2 vertices) must survive verbatim — the
  // gate ignores them, but the wire format carries what it is given.
  RoiMetadata degenerate;
  degenerate.mb_cols = 2;
  degenerate.mb_rows = 2;
  degenerate.regions.push_back({{}, {3, -1}});
  degenerate.regions.push_back({{{160, 320}}, {0, 0}});
  degenerate.regions.push_back({{{0, 0}, {-16, 512}}, {-7, 7}});
  expect_roundtrip(degenerate);

  // Zero-size grid (nothing to ship) still round-trips.
  expect_roundtrip(RoiMetadata{});
}

TEST(RoiMetadataRoundtrip, FromEncodedFrames) {
  // Real encoder output: the intra frame ships an empty field; the inter
  // frame ships the coded MVs and skip flags, which must round-trip and
  // match what the encoder reported.
  codec::Encoder enc({.width = 96, .height = 48});
  video::Frame a(96, 48);
  util::Rng rng(7);
  for (auto& px : a.y.data)
    px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const codec::EncodedFrame intra = enc.encode(a, 20);
  const RoiMetadata mi = from_encoded(intra, 96, 48);
  EXPECT_FALSE(mi.has_motion());
  EXPECT_EQ(mi.width(), 96);
  expect_roundtrip(mi);

  const codec::EncodedFrame inter = enc.encode(a, 20);
  const RoiMetadata mp = from_encoded(inter, 96, 48);
  ASSERT_TRUE(mp.has_motion());
  EXPECT_EQ(mp.mvs.size(), inter.motion.mvs.size());
  EXPECT_EQ(mp.skip, inter.skip);
  expect_roundtrip(mp);
}

TEST(RoiMetadataRoundtrip, TruncatedBytesRejected) {
  const RoiMetadata m = random_metadata(42, false);
  const std::vector<std::uint8_t> bytes = m.serialize();
  // Every proper prefix either fails to parse or (if it happens to be
  // self-delimiting) parses to something that is NOT m — no silent
  // truncation into a matching value.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto parsed =
        RoiMetadata::parse(std::span(bytes.data(), cut));
    if (parsed.has_value()) EXPECT_NE(*parsed, m) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace dive::roi
