// Differential verification of RoI-gated serving determinism: the same
// scenario must produce IDENTICAL results — mAP, gated/full counts,
// propagated boxes, sidecar bytes — regardless of encoder threading,
// scheduler worker count, or batch interleaving. The gate plans at
// admission and runs at dispatch, both in per-session frame order, and
// its held-box state advances strictly in run order; this suite is what
// holds that contract (and CI runs it on every SIMD dispatch leg, so
// the kernels cannot leak into gating decisions either).
#include <gtest/gtest.h>

#include <vector>

#include "harness/serve_scenario.h"

namespace dive::harness {
namespace {

ServeScenarioOptions gated_scenario() {
  ServeScenarioOptions opt = default_serve_options();
  opt.sessions = 3;
  opt.frames_per_session = 10;
  opt.roi_metadata = true;
  // Ample capacity: every frame offloads, so any nondeterminism shows up
  // as a result difference instead of hiding behind admission drops.
  opt.node.session.deadline = util::from_millis(4000.0);
  return opt;
}

struct Digest {
  double map;
  long gated, full, propagated, sidecar, completed;
  double work, px;

  explicit Digest(const ServeScenarioResult& r)
      : map(r.aggregate_map),
        gated(r.gated),
        full(r.full_inference),
        propagated(r.propagated_boxes),
        sidecar(r.sidecar_bytes),
        completed(r.completed),
        work(r.mean_gate_work),
        px(r.mean_gated_pixel_fraction) {}

  bool operator==(const Digest&) const = default;
};

TEST(GatedDeterminism, InvariantAcrossThreadsWorkersAndBatching) {
  ServeScenarioOptions base = gated_scenario();
  base.encoder_threads = 1;
  base.node.scheduler.workers = 1;
  base.node.scheduler.max_batch = 1;
  const Digest reference(run_serve_scenario(base));
  EXPECT_GT(reference.gated, 0);
  EXPECT_GT(reference.sidecar, 0);

  for (const int encoder_threads : {1, 3}) {
    for (const auto [workers, max_batch] :
         {std::pair{1, 4}, {2, 2}, {4, 4}}) {
      ServeScenarioOptions opt = gated_scenario();
      opt.encoder_threads = encoder_threads;
      opt.node.scheduler.workers = workers;
      opt.node.scheduler.max_batch = static_cast<std::size_t>(max_batch);
      const Digest digest(run_serve_scenario(opt));
      EXPECT_EQ(digest, reference)
          << "threads=" << encoder_threads << " workers=" << workers
          << " batch=" << max_batch;
    }
  }
}

TEST(GatedDeterminism, RepeatRunsAreBitIdentical) {
  // Deliberately inherits the roi_metadata DEFAULT instead of pinning it:
  // CI runs this label with DIVE_ROI_METADATA=0 and =1, so this test
  // locks repeat-run determinism for whichever lane the leg selects.
  ServeScenarioOptions opt = gated_scenario();
  opt.roi_metadata = default_serve_options().roi_metadata;
  const Digest a(run_serve_scenario(opt));
  const Digest b(run_serve_scenario(opt));
  EXPECT_EQ(a, b);
}

TEST(GatedDeterminism, MetadataLaneOffMatchesPreRoiBehavior) {
  // roi_metadata off: no sidecar bytes on the uplink, no gate counters,
  // and per-frame work pinned to 1.0 — the scheduler's integer-exact
  // reduction to the pre-RoI service-time formula.
  ServeScenarioOptions opt = gated_scenario();
  opt.roi_metadata = false;
  const ServeScenarioResult r = run_serve_scenario(opt);
  EXPECT_EQ(r.sidecar_bytes, 0);
  EXPECT_EQ(r.gated, 0);
  EXPECT_EQ(r.full_inference, 0);
  EXPECT_EQ(r.propagated_boxes, 0);
  EXPECT_GT(r.aggregate_map, 0.0);
}

TEST(GatedDeterminism, GatedAccuracyTracksFullFrame) {
  // The quality contract at test scale: gating stays within 2 mAP
  // points of full-frame inference while actually gating frames.
  ServeScenarioOptions opt = gated_scenario();
  opt.frames_per_session = 16;
  opt.roi_metadata = false;
  const ServeScenarioResult full = run_serve_scenario(opt);
  opt.roi_metadata = true;
  const ServeScenarioResult gated = run_serve_scenario(opt);
  EXPECT_GT(gated.gated, 0);
  EXPECT_LT(gated.mean_gated_pixel_fraction, 0.8);
  EXPECT_NEAR(gated.aggregate_map, full.aggregate_map, 0.02);
}

}  // namespace
}  // namespace dive::harness
