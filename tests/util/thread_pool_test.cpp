#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace dive::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, 257, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  int sum = 0;  // no synchronization needed: everything runs on the caller
  pool.parallel_for(0, 100, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round)
    pool.parallel_for(0, 50, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 20 * 50);
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](int) { count.fetch_add(1); });
  pool.parallel_for(9, 3, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](int i) {
                                   if (i == 13)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DisjointWritesNeedNoSynchronization) {
  ThreadPool pool(4);
  std::vector<int> out(1000, -1);
  pool.parallel_for(0, 1000, [&](int i) {
    out[static_cast<std::size_t>(i)] = i * i;
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPool, ResolveThreadCountPolicy) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(3), 3);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);

  ASSERT_EQ(setenv("DIVE_THREADS", "2", 1), 0);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0), 2);
  // An explicit request still beats the environment.
  EXPECT_EQ(ThreadPool::resolve_thread_count(5), 5);

  ASSERT_EQ(setenv("DIVE_THREADS", "garbage", 1), 0);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);

  ASSERT_EQ(unsetenv("DIVE_THREADS"), 0);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);
}

}  // namespace
}  // namespace dive::util
