#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/thread_pool.h"

namespace dive::util {
namespace {

TEST(Logging, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Logging, SuppressedBelowThresholdDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // All of these are dropped; the assertions are that nothing blows up
  // and the stream-style macro composes values.
  log_line(LogLevel::kError, "dropped");
  DIVE_LOG_INFO << "value=" << 42 << " pi=" << 3.14;
  DIVE_LOG_ERROR << "also dropped";
  set_log_level(original);
}

TEST(Logging, MacroEvaluatesArguments) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  int count = 0;
  DIVE_LOG_WARN << "side effect " << ++count;
  // The message body is evaluated exactly once regardless of level.
  EXPECT_EQ(count, 1);
  set_log_level(original);
}

TEST(Logging, ParseLogLevelNamesNumbersAndFallback) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("4"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level(nullptr), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(parse_log_level("7"), LogLevel::kWarn);  // out of range
}

TEST(Logging, EnvVariableSetsTheLevel) {
  const LogLevel original = log_level();
  ASSERT_EQ(setenv("DIVE_LOG_LEVEL", "error", 1), 0);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);

  ASSERT_EQ(setenv("DIVE_LOG_LEVEL", "nonsense", 1), 0);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);  // fallback

  ASSERT_EQ(unsetenv("DIVE_LOG_LEVEL"), 0);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);

  // An explicit set_log_level wins over whatever the env said.
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Logging, ConcurrentLinesDoNotInterleave) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  {
    util::ThreadPool pool(4);
    pool.parallel_for(0, 64, [](int i) {
      DIVE_LOG_INFO << "line-" << i << "-a-" << i << "-b-" << i << "-end";
    });
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  set_log_level(original);

  // Every emitted line must be whole: prefix, all three fragments of one
  // message, terminator. 64 lines, none interleaved.
  std::size_t lines = 0, pos = 0;
  while ((pos = captured.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 64u);
  for (int i = 0; i < 64; ++i) {
    const std::string want = "line-" + std::to_string(i) + "-a-" +
                             std::to_string(i) + "-b-" + std::to_string(i) +
                             "-end";
    EXPECT_NE(captured.find(want), std::string::npos) << want;
  }
}

}  // namespace
}  // namespace dive::util
