#include "util/logging.h"

#include <gtest/gtest.h>

namespace dive::util {
namespace {

TEST(Logging, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Logging, SuppressedBelowThresholdDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  // All of these are dropped; the assertions are that nothing blows up
  // and the stream-style macro composes values.
  log_line(LogLevel::kError, "dropped");
  DIVE_LOG_INFO << "value=" << 42 << " pi=" << 3.14;
  DIVE_LOG_ERROR << "also dropped";
  set_log_level(original);
}

TEST(Logging, MacroEvaluatesArguments) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  int count = 0;
  DIVE_LOG_WARN << "side effect " << ++count;
  // The message body is evaluated exactly once regardless of level.
  EXPECT_EQ(count, 1);
  set_log_level(original);
}

}  // namespace
}  // namespace dive::util
