#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dive::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, QuantilesInterpolate) {
  SampleSet s;
  for (double x : {4.0, 1.0, 3.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 2.0);
}

TEST(SampleSet, QuantileOfEmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
}

TEST(SampleSet, CdfMonotone) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.cdf_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(50.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
  double prev = -1.0;
  for (const auto& [x, p] : s.cdf_curve(11)) {
    EXPECT_GE(p, prev) << "CDF must be monotone at x=" << x;
    prev = p;
  }
}

TEST(SampleSet, AddAfterQueryStillCorrect) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(100.0);  // resort required internally
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleSet, MergeMatchesSequential) {
  SampleSet a, b, all;
  for (double x : {5.0, 1.0, 9.0}) {
    a.add(x);
    all.add(x);
  }
  for (double x : {3.0, 7.0}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.median(), all.median());
  EXPECT_DOUBLE_EQ(a.quantile(0.9), all.quantile(0.9));
  // Merging after a query (sorted state) still re-sorts correctly.
  SampleSet c;
  c.add(0.5);
  a.merge(c);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 0.5);
  // Merging an empty set is a no-op.
  a.merge(SampleSet{});
  EXPECT_EQ(a.count(), 6u);
}

TEST(SampleSet, SortSamplesEnablesConstQueries) {
  SampleSet s;
  for (double x : {4.0, 2.0, 8.0, 6.0}) s.add(x);
  // The documented contract: quantile()/cdf_at()/median() on a const ref
  // are only thread-safe after an explicit sort_samples() (the lazy sort
  // mutates mutable state on first query). sort_samples() must leave the
  // set queryable and idempotent.
  s.sort_samples();
  const SampleSet& view = s;
  EXPECT_DOUBLE_EQ(view.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(view.quantile(1.0), 8.0);
  EXPECT_DOUBLE_EQ(view.median(), 5.0);
  s.sort_samples();  // already sorted: no-op
  EXPECT_DOUBLE_EQ(view.median(), 5.0);
  // A later add invalidates sorted state; sort_samples restores it.
  s.add(0.0);
  s.sort_samples();
  EXPECT_DOUBLE_EQ(view.quantile(0.0), 0.0);
}

}  // namespace
}  // namespace dive::util
