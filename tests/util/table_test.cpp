#include "util/table.h"

#include <gtest/gtest.h>

namespace dive::util {
namespace {

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, FmtHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_pct(0.391, 1), "39.1%");
}

TEST(TextTable, RowCount) {
  TextTable t;
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace dive::util
