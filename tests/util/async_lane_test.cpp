// util::AsyncLane: the single-slot background executor behind the
// encoder's frame-pipelined motion prefetch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/async_lane.h"

namespace dive::util {
namespace {

TEST(AsyncLane, RunsTaskOnBackgroundThread) {
  AsyncLane lane;
  std::atomic<bool> ran{false};
  const auto caller = std::this_thread::get_id();
  std::thread::id worker;
  lane.run([&] {
    worker = std::this_thread::get_id();
    ran = true;
  });
  lane.wait();
  EXPECT_TRUE(ran.load());
  EXPECT_NE(worker, caller);
  EXPECT_TRUE(lane.idle());
}

TEST(AsyncLane, TasksRunInSubmissionOrder) {
  AsyncLane lane;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    lane.run([&order, i] { order.push_back(i); });  // run() blocks if busy
  lane.wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(AsyncLane, WaitRethrowsTaskException) {
  AsyncLane lane;
  lane.run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(lane.wait(), std::runtime_error);
  // The error is consumed: the lane is reusable afterwards.
  std::atomic<bool> ran{false};
  lane.run([&] { ran = true; });
  lane.wait();
  EXPECT_TRUE(ran.load());
}

TEST(AsyncLane, WaitWithoutTaskIsNoOp) {
  AsyncLane lane;
  lane.wait();
  EXPECT_TRUE(lane.idle());
}

TEST(AsyncLane, DestructorDrainsPendingTask) {
  std::atomic<bool> ran{false};
  {
    AsyncLane lane;
    lane.run([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ran = true;
    });
  }  // destructor must complete the task, not abandon it
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace dive::util
