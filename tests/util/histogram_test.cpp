#include "util/histogram.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace dive::util {
namespace {

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesUniformly) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 10.0);
}

TEST(Histogram, PeakBinFindsMode) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(2.5);
  h.add(2.6);
  h.add(2.7);
  h.add(3.5);
  EXPECT_EQ(h.peak_bin(), 2u);
}

TEST(Histogram, BoundaryValueGoesToUpperBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);  // exactly on the edge between bin 0 and 1
  EXPECT_EQ(h.count(1), 1u);
}

// (x - lo) / width on these inputs overflows long before the old
// post-cast clamp could run — the cast itself was undefined behavior.
// The fix clamps in the double domain, so extremes land in the edge bins.
TEST(Histogram, ExtremeValuesClampWithoutOverflow) {
  Histogram h(0.0, 1.0, 8);
  h.add(1e300);
  h.add(-1e300);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(7), 2u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(Histogram, NanCountedSeparately) {
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(0.5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 1u);  // NaN lands in no bin and is not in total
  std::size_t sum = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.count(b);
  EXPECT_EQ(sum, h.total());
}

}  // namespace
}  // namespace dive::util
