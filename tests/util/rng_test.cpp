#include "util/rng.h"

#include <gtest/gtest.h>

namespace dive::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
    const int n = rng.uniform_int(5, 9);
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 9);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(42);
  Rng f0 = parent.fork(0);
  Rng f1 = parent.fork(1);
  // Same stream id twice gives identical sequences.
  Rng f0b = parent.fork(0);
  EXPECT_DOUBLE_EQ(f0.uniform(0, 1), f0b.uniform(0, 1));
  // Distinct streams decorrelate.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (f0.uniform_int(0, 1 << 30) == f1.uniform_int(0, 1 << 30)) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

}  // namespace
}  // namespace dive::util
