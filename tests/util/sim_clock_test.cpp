#include "util/sim_clock.h"

#include <gtest/gtest.h>

namespace dive::util {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000);
  EXPECT_EQ(from_millis(2.0), 2'000);
  EXPECT_DOUBLE_EQ(to_seconds(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_millis(1'500), 1.5);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(-50);  // negative deltas ignored
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(50);  // backwards jumps ignored
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(500);
  EXPECT_EQ(clock.now(), 500);
}

TEST(SimClock, StartOffset) {
  SimClock clock(from_seconds(10.0));
  EXPECT_EQ(clock.now(), 10'000'000);
}

}  // namespace
}  // namespace dive::util
