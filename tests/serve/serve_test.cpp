// Serving-layer invariants: deterministic batched scheduling, bounded
// admission, per-session isolation, fairness, and graceful overload
// degradation of the multi-agent scenario.
#include <gtest/gtest.h>

#include <memory>

#include "codec/encoder.h"
#include "harness/serve_scenario.h"
#include "net/bandwidth.h"
#include "serve/node.h"
#include "serve/scheduler.h"

namespace dive::serve {
namespace {

using util::from_millis;
using util::from_seconds;

// ---------------------------------------------------------------- Scheduler

constexpr util::SimTime kDecode = from_millis(3.0);
constexpr util::SimTime kInfer = from_millis(18.0);

Scheduler make_scheduler(int workers, std::size_t max_batch,
                         util::SimTime window = from_millis(4.0),
                         double marginal = 0.35) {
  SchedulerConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = max_batch;
  cfg.batch_window = window;
  cfg.batch_marginal = marginal;
  return Scheduler(cfg, kDecode, kInfer);
}

ScheduledJob job(std::uint32_t session, std::uint64_t frame,
                 util::SimTime arrival) {
  return {session, frame, arrival - from_millis(20.0), arrival};
}

TEST(Scheduler, SingleJobStartsOnArrival) {
  Scheduler s = make_scheduler(1, 1);
  s.submit(job(0, 0, from_millis(10)));
  const auto batches = s.run_until(from_millis(10));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].start, from_millis(10));
  EXPECT_EQ(batches[0].done, from_millis(10) + kDecode + kInfer);
  EXPECT_EQ(batches[0].jobs.size(), 1u);
}

TEST(Scheduler, FullBatchAmortizesInference) {
  Scheduler s = make_scheduler(1, 4);
  for (int f = 0; f < 4; ++f) s.submit(job(0, f, 0));
  const auto batches = s.run_until(0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 4u);
  EXPECT_EQ(batches[0].start, 0);
  // 4 * 3 ms decode + 18 ms * (1 + 3 * 0.35) inference = 48.9 ms,
  // well under the 4 * 21 ms = 84 ms a serial pipeline would pay.
  EXPECT_EQ(batches[0].done, from_millis(48.9));
  EXPECT_LT(batches[0].done, 4 * (kDecode + kInfer));
}

TEST(Scheduler, PartialBatchWaitsOutTheWindow) {
  Scheduler s = make_scheduler(1, 4, from_millis(5.0));
  s.submit(job(0, 0, 0));
  s.submit(job(0, 1, from_millis(2)));
  // The window (0 + 5 ms) has not verifiably expired at t = 4 ms.
  EXPECT_TRUE(s.run_until(from_millis(4)).empty());
  const auto batches = s.run_until(from_millis(5));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 2u);
  EXPECT_EQ(batches[0].start, from_millis(5));  // dispatched at window close
}

TEST(Scheduler, JobArrivingExactlyAtWindowCloseJoinsBatch) {
  // The window is inclusive of its close instant: a job with
  // arrival == close rides the batch instead of opening the next one.
  Scheduler s = make_scheduler(1, 4, from_millis(5.0));
  s.submit(job(0, 0, 0));
  s.submit(job(0, 1, from_millis(5)));  // exactly at close = 0 + 5 ms
  const auto batches = s.run_until(from_millis(5));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 2u);
  EXPECT_EQ(batches[0].start, from_millis(5));
}

TEST(Scheduler, MaxBatchOneIgnoresWindow) {
  // With batching disabled the window must not apply: each job dispatches
  // the moment worker and job meet, and consecutive jobs pack back to
  // back with no window gap.
  Scheduler s = make_scheduler(1, 1, from_millis(50.0));
  s.submit(job(0, 0, from_millis(10)));
  s.submit(job(0, 1, from_millis(10)));
  const auto batches = s.run_until(from_millis(10));
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].start, from_millis(10));  // no 50 ms window wait
  EXPECT_EQ(batches[0].done, from_millis(10) + kDecode + kInfer);
  EXPECT_EQ(batches[1].start, batches[0].done);  // and none between jobs
}

TEST(Scheduler, FullBatchFinalizesWhenLastArrivalEqualsNow) {
  // A full batch is final once no submission strictly after `now` could
  // displace a member — i.e. exactly when now reaches the last arrival,
  // not one event later.
  Scheduler s = make_scheduler(1, 2, from_millis(4.0));
  s.submit(job(0, 0, 0));
  s.submit(job(0, 1, from_millis(3)));
  EXPECT_TRUE(s.run_until(from_millis(2)).empty());  // not final yet
  const auto batches = s.run_until(from_millis(3));  // now == last_arrival
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].jobs.size(), 2u);
  EXPECT_EQ(batches[0].start, from_millis(3));  // max(open, last_arrival)
}

TEST(Scheduler, MaxBatchSplitsBacklog) {
  Scheduler s = make_scheduler(1, 4);
  for (int f = 0; f < 6; ++f) s.submit(job(0, f, 0));
  const auto batches = s.drain();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].jobs.size(), 4u);
  EXPECT_EQ(batches[1].jobs.size(), 2u);
  // The second batch cannot start before the worker frees.
  EXPECT_GE(batches[1].start, batches[0].done);
}

TEST(Scheduler, WorkersRunInParallel) {
  Scheduler s = make_scheduler(2, 1);
  s.submit(job(0, 0, 0));
  s.submit(job(1, 0, 0));
  const auto batches = s.run_until(0);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].start, 0);
  EXPECT_EQ(batches[1].start, 0);
  EXPECT_NE(batches[0].worker, batches[1].worker);
}

TEST(Scheduler, SessionFramesStayInOrder) {
  Scheduler s = make_scheduler(1, 1);
  for (int f = 0; f < 4; ++f) s.submit(job(0, f, from_millis(f)));
  const auto batches = s.drain();
  ASSERT_EQ(batches.size(), 4u);
  for (std::size_t i = 0; i < batches.size(); ++i)
    EXPECT_EQ(batches[i].jobs[0].frame_index, i);
}

TEST(Scheduler, ScheduleIndependentOfRunUntilSlicing) {
  // Incremental run_until calls must produce the same schedule as one
  // drain over the same submissions.
  Scheduler incremental = make_scheduler(1, 2, from_millis(5.0));
  incremental.submit(job(0, 0, from_millis(1)));
  EXPECT_TRUE(incremental.run_until(from_millis(1)).empty());  // deferred
  incremental.submit(job(1, 0, from_millis(3)));
  const auto sliced = incremental.drain();

  Scheduler oneshot = make_scheduler(1, 2, from_millis(5.0));
  oneshot.submit(job(0, 0, from_millis(1)));
  oneshot.submit(job(1, 0, from_millis(3)));
  const auto whole = oneshot.drain();

  ASSERT_EQ(sliced.size(), whole.size());
  ASSERT_EQ(sliced.size(), 1u);
  EXPECT_EQ(sliced[0].start, whole[0].start);
  EXPECT_EQ(sliced[0].done, whole[0].done);
  EXPECT_EQ(sliced[0].jobs.size(), whole[0].jobs.size());
  EXPECT_EQ(sliced[0].start, from_millis(3));  // batch filled on arrival
}

// --------------------------------------------------------- Admission / node

ServeNodeConfig slow_node_config() {
  ServeNodeConfig cfg;
  cfg.scheduler.workers = 1;
  cfg.scheduler.max_batch = 1;
  cfg.admission.max_queue = 2;
  cfg.server.inference_latency = from_seconds(10.0);  // pin the worker
  cfg.server.inference_jitter_ms = 0.0;
  cfg.seed = 5;
  return cfg;
}

std::shared_ptr<net::Uplink> fast_uplink() {
  return std::make_shared<net::Uplink>(
      std::make_shared<net::ConstantBandwidth>(1e9), net::UplinkConfig{});
}

FrameJob encoded_job(codec::Encoder& enc, std::uint32_t session,
                     std::uint64_t frame, util::SimTime arrival) {
  FrameJob j;
  j.session_id = session;
  j.frame_index = frame;
  j.capture_time = arrival - from_millis(20.0);
  j.arrival = arrival;
  j.data = enc.encode(video::Frame(64, 32), 24).data;
  return j;
}

TEST(Admission, QueueBoundIsRespected) {
  ServeNodeConfig cfg = slow_node_config();
  cfg.admission.deadline_aware = false;
  ServeNode node(cfg);
  node.open_session(fast_uplink());
  codec::Encoder enc({.width = 64, .height = 32});

  // Frame 0 is dispatched and occupies the worker for 10 s (its result
  // materializes with a far-future completion timestamp).
  EXPECT_EQ(node.submit(encoded_job(enc, 0, 0, from_millis(1))),
            AdmissionVerdict::kAdmit);
  const auto first = node.run_until(from_millis(2));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_GT(first[0].infer_done, from_seconds(9));
  EXPECT_EQ(node.session(0).queue_depth(), 0u);

  // Two more fill the bounded queue; the third bounces.
  EXPECT_EQ(node.submit(encoded_job(enc, 0, 1, from_millis(3))),
            AdmissionVerdict::kAdmit);
  EXPECT_EQ(node.submit(encoded_job(enc, 0, 2, from_millis(4))),
            AdmissionVerdict::kAdmit);
  EXPECT_EQ(node.session(0).queue_depth(), 2u);
  EXPECT_EQ(node.submit(encoded_job(enc, 0, 3, from_millis(5))),
            AdmissionVerdict::kQueueFull);
  EXPECT_EQ(node.metrics().session(0).dropped_queue, 1);

  // Everything admitted still completes, in frame order.
  const auto results = node.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].frame_index, 1u);
  EXPECT_EQ(results[1].frame_index, 2u);
  EXPECT_EQ(node.metrics().session(0).completed, 3);
  EXPECT_EQ(node.session(0).queue_depth(), 0u);
}

TEST(Admission, DeadlineAwareDropUnderBacklog) {
  ServeNodeConfig cfg = slow_node_config();  // deadline_aware on by default
  // Between the idle-worker completion (~10 s) and the backlogged one
  // (~20 s): frame 0 is servable in time, frame 1 provably is not.
  cfg.session.deadline = from_seconds(15);
  ServeNode node(cfg);
  node.open_session(fast_uplink());
  codec::Encoder enc({.width = 64, .height = 32});

  EXPECT_EQ(node.submit(encoded_job(enc, 0, 0, from_millis(1))),
            AdmissionVerdict::kAdmit);
  node.run_until(from_millis(2));  // worker busy until ~10 s
  // Predicted completion is past capture + 15 s: rejected up front.
  EXPECT_EQ(node.submit(encoded_job(enc, 0, 1, from_millis(3))),
            AdmissionVerdict::kDeadline);
  EXPECT_EQ(node.metrics().session(0).dropped_deadline, 1);
  node.drain();
}

TEST(Session, JitterStreamsAreIndependentAndOrderFree) {
  ServeNodeConfig cfg;
  cfg.seed = 42;
  ServeNode node(cfg);
  node.open_session(fast_uplink());
  node.open_session(fast_uplink());

  // Distinct per-session streams...
  EXPECT_NE(node.session(0).server().inference_jitter(0),
            node.session(1).server().inference_jitter(0));
  // ...reproducible from the documented derivation, independent of
  // anything other sessions do (edge/server.h determinism contract).
  const edge::EdgeServer solo(cfg.server, util::Rng(42).fork(1).seed());
  for (std::uint64_t k = 0; k < 8; ++k)
    EXPECT_EQ(node.session(1).server().inference_jitter(k),
              solo.inference_jitter(k));
}

TEST(Session, DecodersAreIsolatedAcrossSessions) {
  ServeNodeConfig cfg;
  cfg.scheduler.workers = 1;
  cfg.scheduler.max_batch = 2;  // both sessions share one batch
  cfg.seed = 7;
  ServeNode node(cfg);
  node.open_session(fast_uplink());
  node.open_session(fast_uplink());

  codec::Encoder enc_a({.width = 64, .height = 32});
  codec::Encoder enc_b({.width = 64, .height = 32});
  node.submit(encoded_job(enc_a, 0, 0, from_millis(1)));
  node.submit(encoded_job(enc_b, 1, 0, from_millis(1)));
  // Inter frames only decode against the right per-session reference.
  node.submit(encoded_job(enc_a, 0, 1, from_millis(90)));
  node.submit(encoded_job(enc_b, 1, 1, from_millis(90)));
  EXPECT_NO_THROW(node.drain());
  EXPECT_TRUE(node.session(0).server().has_reference());
  EXPECT_TRUE(node.session(1).server().has_reference());
  EXPECT_EQ(node.metrics().aggregate().completed, 4);
  EXPECT_GT(node.metrics().aggregate().batch_size.max(), 1.0);
}

// ----------------------------------------------------------------- Scenario

harness::ServeScenarioOptions small_scenario(int sessions) {
  harness::ServeScenarioOptions opt = harness::default_serve_options();
  opt.sessions = sessions;
  opt.frames_per_session = 8;
  opt.width = 128;
  opt.height = 80;
  opt.clip_pool = 1;
  return opt;
}

TEST(ServeScenario, SameSeedReproducesIdenticalMetrics) {
  const auto opt = small_scenario(2);
  const auto a = harness::run_serve_scenario(opt);
  const auto b = harness::run_serve_scenario(opt);
  EXPECT_DOUBLE_EQ(a.aggregate_map, b.aggregate_map);
  EXPECT_DOUBLE_EQ(a.mean_e2e_ms, b.mean_e2e_ms);
  EXPECT_DOUBLE_EQ(a.p95_e2e_ms, b.p95_e2e_ms);
  EXPECT_DOUBLE_EQ(a.mean_wait_ms, b.mean_wait_ms);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_deadline, b.dropped_deadline);
  EXPECT_EQ(a.dropped_uplink, b.dropped_uplink);
}

TEST(ServeScenario, IdenticalSessionsAreServedFairly) {
  // Two agents, same clip, ample capacity: identical inputs must yield
  // identical per-session outcomes (FIFO + phase offsets cannot starve
  // either session).
  const auto r = harness::run_serve_scenario(small_scenario(2));
  ASSERT_EQ(r.sessions.size(), 2u);
  EXPECT_EQ(r.sessions[0].offloaded, r.sessions[1].offloaded);
  EXPECT_DOUBLE_EQ(r.sessions[0].map, r.sessions[1].map);
  EXPECT_NEAR(r.sessions[0].mean_e2e_ms, r.sessions[1].mean_e2e_ms, 5.0);
  EXPECT_EQ(r.dropped_queue + r.dropped_deadline + r.dropped_uplink, 0);
  EXPECT_DOUBLE_EQ(r.offload_fraction, 1.0);
}

TEST(ServeScenario, OverloadDegradesGracefully) {
  // One slow worker against 8 agents: the node must shed load through
  // admission control (MOT fallbacks), keep queues bounded, and finish.
  harness::ServeScenarioOptions opt = small_scenario(8);
  opt.node.scheduler.workers = 1;
  opt.node.scheduler.max_batch = 1;
  opt.node.session.deadline = from_millis(150.0);
  const auto r = harness::run_serve_scenario(opt);

  EXPECT_EQ(r.frames, 64);
  EXPECT_GT(r.dropped_queue + r.dropped_deadline, 0);
  EXPECT_GT(r.mot, 0);
  EXPECT_EQ(r.completed + r.mot, r.frames);
  EXPECT_LT(r.offload_fraction, 1.0);
  // Bounded queues: depth at admission never exceeded the configured cap.
  EXPECT_LE(r.metrics.aggregate().queue_depth.max(),
            static_cast<double>(opt.node.admission.max_queue));
  // Overloaded sessions still produce usable detections via MOT.
  EXPECT_GT(r.aggregate_map, 0.0);
}

TEST(ServeScenario, BatchingRaisesSustainableLoad) {
  // Same demand, same worker pool: batching serves strictly more frames
  // at the edge than the unbatched node once the pool saturates.
  harness::ServeScenarioOptions batched = small_scenario(8);
  batched.node.scheduler.workers = 1;
  harness::ServeScenarioOptions serial = batched;
  serial.node.scheduler.max_batch = 1;

  const auto with_batching = harness::run_serve_scenario(batched);
  const auto without = harness::run_serve_scenario(serial);
  EXPECT_GT(with_batching.completed, without.completed);
  EXPECT_GT(with_batching.mean_batch, 1.0);
}

// ------------------------------------------------------------ ServeMetrics

TEST(ServeMetrics, ZeroCompletedSessionsRenderSafely) {
  ServeMetrics metrics;
  metrics.session(0);  // opened but never served
  metrics.session(1).submitted = 3;
  metrics.session(1).dropped_queue = 3;

  // Empty SampleSets must not trip the quantile paths in either table.
  const std::string per_session = metrics.session_table().to_string();
  const std::string summary = metrics.summary_table().to_string();
  EXPECT_NE(per_session.find("0"), std::string::npos);
  EXPECT_NE(summary.find("all"), std::string::npos);

  const SessionCounters agg = metrics.aggregate();
  EXPECT_EQ(agg.submitted, 3);
  EXPECT_EQ(agg.completed, 0);
  EXPECT_TRUE(agg.e2e_ms.empty());
}

TEST(ServeMetrics, MetricsForUnknownSessionThrow) {
  const ServeMetrics metrics;
  EXPECT_THROW(metrics.session(0), std::out_of_range);
}

SessionCounters sample_counters(long completed, double e2e_base) {
  SessionCounters c;
  c.submitted = completed + 1;
  c.admitted = completed;
  c.completed = completed;
  c.dropped_queue = 1;
  for (long i = 0; i < completed; ++i) {
    c.queue_depth.add(static_cast<double>(i % 3));
    c.batch_size.add(static_cast<double>(1 + i % 4));
    c.wait_ms.add(5.0 + static_cast<double>(i));
    c.e2e_ms.add(e2e_base + static_cast<double>(i));
  }
  return c;
}

TEST(ServeMetrics, MergeIsAssociative) {
  const SessionCounters a = sample_counters(3, 100.0);
  const SessionCounters b = sample_counters(5, 140.0);
  const SessionCounters c = sample_counters(2, 80.0);

  SessionCounters left = a;        // (a + b) + c
  left.merge(b);
  left.merge(c);
  SessionCounters bc = b;          // a + (b + c)
  bc.merge(c);
  SessionCounters right = a;
  right.merge(bc);

  EXPECT_EQ(left.submitted, right.submitted);
  EXPECT_EQ(left.completed, right.completed);
  EXPECT_EQ(left.dropped(), right.dropped());
  EXPECT_EQ(left.e2e_ms.count(), right.e2e_ms.count());
  EXPECT_DOUBLE_EQ(left.e2e_ms.quantile(0.5), right.e2e_ms.quantile(0.5));
  EXPECT_DOUBLE_EQ(left.wait_ms.quantile(0.95), right.wait_ms.quantile(0.95));
  EXPECT_NEAR(left.batch_size.mean(), right.batch_size.mean(), 1e-12);
}

TEST(ServeMetrics, PublishIsIdempotentAndMatchesAggregate) {
  ServeMetrics metrics;
  metrics.session(0) = sample_counters(4, 90.0);
  metrics.session(1) = sample_counters(6, 120.0);

  obs::MetricsRegistry registry;
  metrics.publish(registry);
  const std::string first = registry.to_json();
  metrics.publish(registry);  // must not double-count
  EXPECT_EQ(registry.to_json(), first);

  const SessionCounters agg = metrics.aggregate();
  EXPECT_EQ(registry.counter("serve.submitted").value(), agg.submitted);
  EXPECT_EQ(registry.counter("serve.completed").value(), agg.completed);
  EXPECT_EQ(registry.counter("serve.sessions").value(), 2);
  EXPECT_EQ(registry.distribution("serve.e2e_ms").count(),
            agg.e2e_ms.count());
  EXPECT_EQ(registry.distribution("serve.per_session.completed").count(), 2u);
}

TEST(ServeMetrics, PublishHandlesZeroSessions) {
  const ServeMetrics metrics;
  obs::MetricsRegistry registry;
  metrics.publish(registry);  // no sessions at all: all zeros, no throw
  EXPECT_EQ(registry.counter("serve.sessions").value(), 0);
  EXPECT_EQ(registry.distribution("serve.e2e_ms").count(), 0u);
}

TEST(ServeScenario, ObsContextCollectsSpansAndMetrics) {
  obs::ObsContext ctx;
  ctx.tracer.set_enabled(true);
  harness::ServeScenarioOptions opt = small_scenario(2);
  opt.obs = &ctx;
  const auto r = harness::run_serve_scenario(opt);

  // drain() published the node's metrics into the shared registry...
  EXPECT_EQ(ctx.metrics.counter("serve.completed").value(), r.completed);
  // ...and every completed inference left a span on its session track.
  std::size_t infer_spans = 0;
  for (const auto& ev : ctx.tracer.snapshot()) {
    if (ev.name == "serve.infer") {
      ++infer_spans;
      EXPECT_GE(ev.track, obs::kTrackSessionBase);
      EXPECT_GE(ev.sim_end, ev.sim_begin);
    }
  }
  EXPECT_EQ(infer_spans, static_cast<std::size_t>(r.completed));
}

}  // namespace
}  // namespace dive::serve
