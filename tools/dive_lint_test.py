#!/usr/bin/env python3
"""Self-test of tools/dive_lint.py.

Builds throwaway source trees and asserts each rule fires where it must
and stays quiet where it must not — including the contract's acceptance
check: deliberately inserting a std::steady_clock call into src/serve/
fails the lint. Runs as ctest 'lint/dive_lint_selftest'.
"""

import os
import subprocess
import sys
import tempfile

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "dive_lint.py")

PASSED = 0


def run_lint(root):
    return subprocess.run(
        [sys.executable, LINT, "--root", root],
        capture_output=True,
        text=True,
    )


def make_tree(files):
    """Creates a temp repo skeleton with the given {relpath: content}."""
    root = tempfile.mkdtemp(prefix="dive_lint_test_")
    for relpath, content in files.items():
        path = os.path.join(root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
    return root


def expect(name, files, should_fail, needle=None):
    global PASSED
    root = make_tree(files)
    proc = run_lint(root)
    if should_fail and proc.returncode != 1:
        sys.exit(
            f"FAIL {name}: expected findings (exit 1), got exit "
            f"{proc.returncode}\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    if not should_fail and proc.returncode != 0:
        sys.exit(
            f"FAIL {name}: expected clean (exit 0), got exit "
            f"{proc.returncode}\nstderr: {proc.stderr}"
        )
    if needle is not None and needle not in proc.stderr:
        sys.exit(
            f"FAIL {name}: expected {needle!r} in findings\n"
            f"stderr: {proc.stderr}"
        )
    print(f"ok: {name}")
    PASSED += 1


CLEAN_SERVE = """
#include <vector>
namespace dive::serve {
inline int sum(const std::vector<int>& v) {
  int acc = 0;
  for (int x : v) acc += x;
  return acc;
}
}
"""

# The acceptance-criteria case: a wall-clock read smuggled into the
# serving layer must be caught.
STEADY_CLOCK_SERVE = """
#include <chrono>
namespace dive::serve {
inline long long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}
"""

expect(
    "steady_clock in src/serve fails",
    {"src/serve/node.cpp": STEADY_CLOCK_SERVE},
    should_fail=True,
    needle="wall-clock",
)

expect(
    "clean serve file passes",
    {"src/serve/node.cpp": CLEAN_SERVE},
    should_fail=False,
)

expect(
    "steady_clock inside src/obs is the tracer's business",
    {"src/obs/trace.cpp": STEADY_CLOCK_SERVE.replace("serve", "obs")},
    should_fail=False,
)

expect(
    "steady_clock in a comment does not count",
    {
        "src/serve/node.cpp": CLEAN_SERVE
        + "// std::chrono::steady_clock::now() would be wrong here\n"
    },
    should_fail=False,
)

expect(
    "steady_clock in a string literal does not count",
    {
        "src/serve/node.cpp": CLEAN_SERVE
        + 'inline const char* kDoc = "std::chrono::steady_clock";\n'
    },
    should_fail=False,
)

expect(
    "dive-lint: allow(<rule>) escape suppresses the finding",
    {
        "src/serve/node.cpp": (
            "#include <chrono>\n"
            "// deliberate: documented drift probe\n"
            "auto t = std::chrono::steady_clock::now();"
            "  // dive-lint: allow(wall-clock)\n"
        )
    },
    should_fail=False,
)

expect(
    "allowlist file exempts a path",
    {
        "src/serve/node.cpp": STEADY_CLOCK_SERVE,
        "tools/dive_lint_allow.txt": "wall-clock src/serve/node.cpp\n",
    },
    should_fail=False,
)

expect(
    "allowlist entry for one rule does not cover another",
    {
        "src/serve/node.cpp": STEADY_CLOCK_SERVE,
        "tools/dive_lint_allow.txt": "ambient-rng src/serve/node.cpp\n",
    },
    should_fail=True,
    needle="wall-clock",
)

expect(
    "std::mt19937 outside util/rng fails",
    {
        "src/codec/encoder.cpp": (
            "#include <random>\n"
            "namespace dive::codec { std::mt19937 g_rng{42}; }\n"
        )
    },
    should_fail=True,
    needle="ambient-rng",
)

expect(
    "std::mt19937 inside src/util/rng.h is the seeded wrapper",
    {
        "src/util/rng.h": (
            "#include <random>\n"
            "namespace dive::util { struct Rng { std::mt19937_64 e; }; }\n"
        )
    },
    should_fail=False,
)

expect(
    "random_device anywhere in src fails",
    {
        "src/video/renderer.cpp": (
            "#include <random>\nstatic std::random_device rd;\n"
        )
    },
    should_fail=True,
    needle="ambient-rng",
)

expect(
    "range-for over an unordered_map in src/codec fails",
    {
        "src/codec/cache.cpp": (
            "#include <unordered_map>\n"
            "namespace dive::codec {\n"
            "std::unordered_map<int, int> table;\n"
            "int drain() { int s = 0; "
            "for (const auto& kv : table) s += kv.second; return s; }\n"
            "}\n"
        )
    },
    should_fail=True,
    needle="unordered-iter",
)

expect(
    "unordered_map lookup without iteration passes",
    {
        "src/codec/cache.cpp": (
            "#include <unordered_map>\n"
            "namespace dive::codec {\n"
            "std::unordered_map<int, int> table;\n"
            "int get(int k) { auto it = table.find(k); "
            "return it == table.end() ? 0 : it->second; }\n"
            "}\n"
        )
    },
    should_fail=False,
)

expect(
    "explicit begin() walk over an unordered_set fails",
    {
        "src/roi/gate.cpp": (
            "#include <unordered_set>\n"
            "namespace dive::roi {\n"
            "std::unordered_set<int> lit;\n"
            "int first() { return *lit.begin(); }\n"
            "}\n"
        )
    },
    should_fail=True,
    needle="unordered-iter",
)

expect(
    "unordered_map iteration OUTSIDE the deterministic dirs passes",
    {
        "src/obs/metrics.cpp": (
            "#include <unordered_map>\n"
            "std::unordered_map<int, int> t;\n"
            "int s() { int a = 0; for (auto& kv : t) a += kv.second; "
            "return a; }\n"
        )
    },
    should_fail=False,
)

expect(
    "std::reduce over doubles in src/codec fails",
    {
        "src/codec/psnr.cpp": (
            "#include <numeric>\n#include <vector>\n"
            "double total(const std::vector<double>& v) {\n"
            "  return std::reduce(v.begin(), v.end(), 0.0);\n"
            "}\n"
        )
    },
    should_fail=True,
    needle="float-reduce",
)

expect(
    "std::execution::par in src/serve fails",
    {
        "src/serve/scheduler.cpp": (
            "#include <execution>\n#include <numeric>\n#include <vector>\n"
            "double t(const std::vector<double>& v) {\n"
            "  return std::reduce(std::execution::par, v.begin(), v.end());\n"
            "}\n"
        )
    },
    should_fail=True,
    needle="float-reduce",
)

expect(
    "sequential std::accumulate is fine (fixed order)",
    {
        "src/codec/psnr.cpp": (
            "#include <numeric>\n#include <vector>\n"
            "double total(const std::vector<double>& v) {\n"
            "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
            "}\n"
        )
    },
    should_fail=False,
)

# --- metric-name / metric-concat -------------------------------------

METRICS_PRELUDE = (
    "namespace dive::core {\n"
    "void record(dive::obs::MetricsRegistry& m) {\n"
)
METRICS_EPILOGUE = "}\n}\n"


def metric_file(body):
    return {"src/core/agent.cpp": METRICS_PRELUDE + body + METRICS_EPILOGUE}


expect(
    "well-formed layer-prefixed metric names pass",
    metric_file(
        '  m.counter("agent.frames").add();\n'
        '  m.distribution("net.transmit_ms", "ms").add(1.0);\n'
        '  m.gauge("obs.ledger.frames", "count").set(1.0);\n'
    ),
    should_fail=False,
)

expect(
    "unknown layer prefix fails",
    metric_file('  m.counter("pipeline.frames").add();\n'),
    should_fail=True,
    needle="metric-name",
)

expect(
    "dotless metric name fails",
    metric_file('  m.counter("frames").add();\n'),
    should_fail=True,
    needle="metric-name",
)

expect(
    "the unit argument is free-form (not name-checked)",
    metric_file('  m.distribution("agent.fg_area_pct", "%").add(1.0);\n'),
    should_fail=False,
)

expect(
    "ternary of two valid literals passes",
    metric_file(
        '  m.counter(true ? "roi.gated_frames" : "roi.full_frames").add();\n'
    ),
    should_fail=False,
)

expect(
    "ternary with one malformed literal fails",
    metric_file(
        '  m.counter(true ? "roi.gated_frames" : "fullFrames").add();\n'
    ),
    should_fail=True,
    needle="metric-name",
)

expect(
    "concatenated metric name on the recording path fails",
    metric_file(
        "  int i = 3;\n"
        '  m.counter("agent.session." + std::to_string(i)).add();\n'
    ),
    should_fail=True,
    needle="metric-concat",
)

expect(
    "operator+ of two name fragments fails",
    metric_file('  m.distribution(prefix + suffix, "ms").add(1.0);\n'),
    should_fail=True,
    needle="metric-concat",
)

expect(
    "pre-composed name variable passes (composed off the hot path)",
    metric_file('  m.distribution(name, "ms").add(1.0);\n'),
    should_fail=False,
)

expect(
    "metric call spanning lines: name on the continuation line checks",
    metric_file('  m.distribution(\n      "bogus.metric", "ms").add(1.0);\n'),
    should_fail=True,
    needle="metric-name",
)

expect(
    "metric name inside a comment does not count",
    metric_file('  // m.counter("bogus.frames") would be wrong\n'),
    should_fail=False,
)

expect(
    "allow(metric-concat) escape suppresses the finding",
    metric_file(
        '  m.counter("agent.x." + std::to_string(1))'
        ".add();  // dive-lint: allow(metric-concat)\n"
    ),
    should_fail=False,
)

print(f"dive_lint self-test: {PASSED} cases passed")
