#!/usr/bin/env python3
"""Diff a fresh BENCH_*.json record against a checked-in baseline.

Usage:
    check_bench_baseline.py BASELINE FRESH [--tolerance X]

The baseline pins the metric SET exactly (a renamed or dropped metric is
a hard failure — the record is an interface) and the VALUES loosely:
CI runners differ wildly in clock speed, so only order-of-magnitude
regressions should fail the build.

Per-unit direction:
  time-like units (ns/call, ms/frame, ...): fresh <= baseline * tolerance
  ratio units ("x", speedups):              fresh >= baseline / tolerance
Other units are checked for presence only.
"""

import argparse
import json
import sys

TIME_UNITS = {"ns", "ns/call", "us", "ms", "ms/frame", "s"}
RATIO_UNITS = {"x"}


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unknown schema {doc.get('schema')!r}")
    return {rec["metric"]: rec for rec in doc["records"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=4.0,
        help="allowed slowdown/shrink factor before failing (default 4x, "
        "deliberately generous: shared CI runners are noisy)",
    )
    args = ap.parse_args()

    base = load_records(args.baseline)
    fresh = load_records(args.fresh)

    failures = []
    for name, brec in sorted(base.items()):
        frec = fresh.get(name)
        if frec is None:
            failures.append(f"{name}: missing from fresh record")
            continue
        if frec["unit"] != brec["unit"]:
            failures.append(
                f"{name}: unit changed {brec['unit']!r} -> {frec['unit']!r}"
            )
            continue
        bval, fval, unit = brec["value"], frec["value"], brec["unit"]
        if unit in TIME_UNITS and bval > 0:
            limit = bval * args.tolerance
            verdict = "OK" if fval <= limit else "REGRESSED"
            print(f"{name}: {fval:.4g} {unit} (baseline {bval:.4g}, "
                  f"limit {limit:.4g}) {verdict}")
            if fval > limit:
                failures.append(
                    f"{name}: {fval:.4g} {unit} exceeds {args.tolerance}x "
                    f"baseline {bval:.4g}"
                )
        elif unit in RATIO_UNITS and bval > 0:
            floor = bval / args.tolerance
            verdict = "OK" if fval >= floor else "REGRESSED"
            print(f"{name}: {fval:.4g}{unit} (baseline {bval:.4g}, "
                  f"floor {floor:.4g}) {verdict}")
            if fval < floor:
                failures.append(
                    f"{name}: {fval:.4g}{unit} below baseline "
                    f"{bval:.4g}/{args.tolerance}"
                )
        else:
            print(f"{name}: present ({fval:.4g} {unit}), value not compared")

    extra = sorted(set(fresh) - set(base))
    for name in extra:
        print(f"{name}: new metric (not in baseline), ignored")

    if failures:
        print("\nbench baseline check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench baseline check OK ({len(base)} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
