#!/usr/bin/env python3
"""Diff fresh BENCH_*.json records against checked-in baselines.

Usage:
    check_bench_baseline.py BASELINE FRESH [--tolerance X]
    check_bench_baseline.py --baseline-dir DIR --fresh-dir DIR [--tolerance X]

Pair mode compares one baseline file against one fresh record. Directory
mode compares EVERY BENCH_*.json in the baseline directory against the
same-named file in the fresh directory — checking in a new baseline is
enough to put it under CI; forgetting to emit it becomes a hard failure.
Fresh records with no baseline are listed but ignored (benches graduate
to pinned status by getting a baseline checked in).

Each baseline pins the metric SET exactly (a renamed or dropped metric is
a hard failure — the record is an interface) and the VALUES loosely:
CI runners differ wildly in clock speed, so only order-of-magnitude
regressions should fail the build.

Per-unit direction:
  time-like units (ns/call, ms/frame, ...): fresh <= baseline * tolerance
  ratio units ("x", speedups):              fresh >= baseline / tolerance
Other units are checked for presence only.
"""

import argparse
import glob
import json
import os
import sys

TIME_UNITS = {"ns", "ns/call", "us", "ms", "ms/frame", "s"}
RATIO_UNITS = {"x"}


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unknown schema {doc.get('schema')!r}")
    return {rec["metric"]: rec for rec in doc["records"]}


def check_pair(baseline_path, fresh_path, tolerance):
    """Compare one baseline/fresh file pair; return a list of failures."""
    base = load_records(baseline_path)
    fresh = load_records(fresh_path)
    label = os.path.basename(baseline_path)

    failures = []
    for name, brec in sorted(base.items()):
        frec = fresh.get(name)
        if frec is None:
            failures.append(f"{label}: {name}: missing from fresh record")
            continue
        if frec["unit"] != brec["unit"]:
            failures.append(
                f"{label}: {name}: unit changed "
                f"{brec['unit']!r} -> {frec['unit']!r}"
            )
            continue
        bval, fval, unit = brec["value"], frec["value"], brec["unit"]
        if unit in TIME_UNITS and bval > 0:
            limit = bval * tolerance
            verdict = "OK" if fval <= limit else "REGRESSED"
            print(f"{name}: {fval:.4g} {unit} (baseline {bval:.4g}, "
                  f"limit {limit:.4g}) {verdict}")
            if fval > limit:
                failures.append(
                    f"{label}: {name}: {fval:.4g} {unit} exceeds "
                    f"{tolerance}x baseline {bval:.4g}"
                )
        elif unit in RATIO_UNITS and bval > 0:
            floor = bval / tolerance
            verdict = "OK" if fval >= floor else "REGRESSED"
            print(f"{name}: {fval:.4g}{unit} (baseline {bval:.4g}, "
                  f"floor {floor:.4g}) {verdict}")
            if fval < floor:
                failures.append(
                    f"{label}: {name}: {fval:.4g}{unit} below baseline "
                    f"{bval:.4g}/{tolerance}"
                )
        else:
            print(f"{name}: present ({fval:.4g} {unit}), value not compared")

    for name in sorted(set(fresh) - set(base)):
        print(f"{name}: new metric (not in baseline), ignored")

    return failures, len(base)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument("--baseline-dir", help="directory of checked-in baselines")
    ap.add_argument("--fresh-dir", help="directory of freshly emitted records")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=4.0,
        help="allowed slowdown/shrink factor before failing (default 4x, "
        "deliberately generous: shared CI runners are noisy)",
    )
    args = ap.parse_args()

    dir_mode = args.baseline_dir is not None or args.fresh_dir is not None
    if dir_mode:
        if not (args.baseline_dir and args.fresh_dir):
            ap.error("--baseline-dir and --fresh-dir must be given together")
        if args.baseline or args.fresh:
            ap.error("positional BASELINE/FRESH conflict with directory mode")
        pairs = []
        baselines = sorted(
            glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
        if not baselines:
            sys.exit(f"{args.baseline_dir}: no BENCH_*.json baselines found")
        for bpath in baselines:
            pairs.append((bpath, os.path.join(args.fresh_dir,
                                              os.path.basename(bpath))))
        pinned = {os.path.basename(b) for b, _ in pairs}
        for fpath in sorted(
                glob.glob(os.path.join(args.fresh_dir, "BENCH_*.json"))):
            if os.path.basename(fpath) not in pinned:
                print(f"{os.path.basename(fpath)}: no baseline, not checked")
    else:
        if not (args.baseline and args.fresh):
            ap.error("need BASELINE FRESH or --baseline-dir/--fresh-dir")
        pairs = [(args.baseline, args.fresh)]

    failures = []
    metrics = 0
    for bpath, fpath in pairs:
        print(f"== {os.path.basename(bpath)} ==")
        if not os.path.exists(fpath):
            failures.append(
                f"{os.path.basename(bpath)}: fresh record {fpath} not emitted")
            continue
        pair_failures, pair_metrics = check_pair(bpath, fpath, args.tolerance)
        failures.extend(pair_failures)
        metrics += pair_metrics

    if failures:
        print("\nbench baseline check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench baseline check OK "
          f"({metrics} metrics across {len(pairs)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
