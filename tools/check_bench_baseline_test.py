#!/usr/bin/env python3
"""Unit test of tools/check_bench_baseline.py — the gate that pins bench
records in CI. The gate itself was untested; a bug here would silently
wave regressions through (or hard-fail every PR), so it gets the same
treatment as any parser: missing-file, metric-set, unit, and
tolerance-edge cases. Runs as ctest 'lint/check_bench_baseline'.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "check_bench_baseline.py"
)

PASSED = 0


def record(name, metrics):
    return {
        "bench": name,
        "schema": 1,
        "git_rev": "test",
        "records": [
            {"metric": m, "value": v, "unit": u} for m, v, u in metrics
        ],
    }


def write(path, doc):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f)


def run_checker(*args):
    return subprocess.run(
        [sys.executable, CHECKER, *args], capture_output=True, text=True
    )


def expect(name, returncode, proc, needle=None):
    global PASSED
    if proc.returncode != returncode:
        sys.exit(
            f"FAIL {name}: expected exit {returncode}, got "
            f"{proc.returncode}\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    if needle is not None and needle not in proc.stdout + proc.stderr:
        sys.exit(
            f"FAIL {name}: expected {needle!r} in output\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    print(f"ok: {name}")
    PASSED += 1


def fresh_dirs():
    root = tempfile.mkdtemp(prefix="bench_gate_test_")
    return os.path.join(root, "baselines"), os.path.join(root, "fresh")


# --- pair mode: identical records pass ---
bdir, fdir = fresh_dirs()
base = os.path.join(bdir, "BENCH_x.json")
fresh = os.path.join(fdir, "BENCH_x.json")
write(base, record("x", [("encode", 100.0, "ms"), ("speedup", 4.0, "x")]))
write(fresh, record("x", [("encode", 100.0, "ms"), ("speedup", 4.0, "x")]))
expect("identical records pass", 0, run_checker(base, fresh))

# --- missing fresh file (directory mode) is a hard failure ---
bdir, fdir = fresh_dirs()
write(os.path.join(bdir, "BENCH_x.json"), record("x", [("m", 1.0, "ms")]))
os.makedirs(fdir, exist_ok=True)
expect(
    "missing fresh record fails",
    1,
    run_checker("--baseline-dir", bdir, "--fresh-dir", fdir),
    needle="not emitted",
)

# --- a metric dropped from the fresh record is a hard failure ---
bdir, fdir = fresh_dirs()
base = os.path.join(bdir, "BENCH_x.json")
fresh = os.path.join(fdir, "BENCH_x.json")
write(base, record("x", [("kept", 1.0, "ms"), ("dropped", 2.0, "ms")]))
write(fresh, record("x", [("kept", 1.0, "ms")]))
expect(
    "dropped metric fails",
    1,
    run_checker(base, fresh),
    needle="missing from fresh record",
)

# --- an EXTRA fresh metric is ignored (benches may grow ahead of the
# baseline), but must be called out ---
bdir, fdir = fresh_dirs()
base = os.path.join(bdir, "BENCH_x.json")
fresh = os.path.join(fdir, "BENCH_x.json")
write(base, record("x", [("m", 1.0, "ms")]))
write(fresh, record("x", [("m", 1.0, "ms"), ("extra", 9.0, "ms")]))
expect(
    "extra fresh metric passes with a note",
    0,
    run_checker(base, fresh),
    needle="new metric",
)

# --- unit change is an interface break ---
bdir, fdir = fresh_dirs()
base = os.path.join(bdir, "BENCH_x.json")
fresh = os.path.join(fdir, "BENCH_x.json")
write(base, record("x", [("m", 1.0, "ms")]))
write(fresh, record("x", [("m", 1.0, "us")]))
expect(
    "unit change fails", 1, run_checker(base, fresh), needle="unit changed"
)

# --- tolerance edges, time-like unit (fresh <= baseline * tol) ---
bdir, fdir = fresh_dirs()
base = os.path.join(bdir, "BENCH_x.json")
fresh = os.path.join(fdir, "BENCH_x.json")
write(base, record("x", [("m", 100.0, "ms")]))
write(fresh, record("x", [("m", 400.0, "ms")]))
expect(
    "time metric exactly at the 4x limit passes", 0, run_checker(base, fresh)
)
write(fresh, record("x", [("m", 400.0001, "ms")]))
expect(
    "time metric just above the limit fails",
    1,
    run_checker(base, fresh),
    needle="exceeds",
)
write(fresh, record("x", [("m", 400.0001, "ms")]))
expect(
    "wider --tolerance admits the same value",
    0,
    run_checker(base, fresh, "--tolerance", "8"),
)

# --- tolerance edges, ratio unit (fresh >= baseline / tol) ---
bdir, fdir = fresh_dirs()
base = os.path.join(bdir, "BENCH_x.json")
fresh = os.path.join(fdir, "BENCH_x.json")
write(base, record("x", [("speedup", 8.0, "x")]))
write(fresh, record("x", [("speedup", 2.0, "x")]))
expect(
    "ratio metric exactly at the floor passes", 0, run_checker(base, fresh)
)
write(fresh, record("x", [("speedup", 1.999, "x")]))
expect(
    "ratio metric below the floor fails",
    1,
    run_checker(base, fresh),
    needle="below baseline",
)

# --- unknown units are presence-only ---
bdir, fdir = fresh_dirs()
base = os.path.join(bdir, "BENCH_x.json")
fresh = os.path.join(fdir, "BENCH_x.json")
write(base, record("x", [("rate", 10.0, "frames")]))
write(fresh, record("x", [("rate", 0.001, "frames")]))
expect(
    "unknown unit is presence-only",
    0,
    run_checker(base, fresh),
    needle="not compared",
)

# --- schema mismatch is fatal ---
bdir, fdir = fresh_dirs()
base = os.path.join(bdir, "BENCH_x.json")
fresh = os.path.join(fdir, "BENCH_x.json")
doc = record("x", [("m", 1.0, "ms")])
doc["schema"] = 2
write(base, doc)
write(fresh, record("x", [("m", 1.0, "ms")]))
expect(
    "unknown schema fails", 1, run_checker(base, fresh), needle="schema"
)

# --- directory mode: empty baseline dir is a configuration error ---
bdir, fdir = fresh_dirs()
os.makedirs(bdir, exist_ok=True)
os.makedirs(fdir, exist_ok=True)
expect(
    "empty baseline dir fails",
    1,
    run_checker("--baseline-dir", bdir, "--fresh-dir", fdir),
    needle="no BENCH_",
)

print(f"check_bench_baseline test: {PASSED} cases passed")
