#!/usr/bin/env python3
"""dive_lint: DiVE's determinism contract as an executable check.

The verification contract (ROADMAP, DESIGN §14) requires that everything
on the agent→edge reproduction path is a pure function of its inputs:
the mobile agent and the edge server must agree bit-for-bit on
reconstructed frames and RoI sidecars, across thread counts, SIMD
kernels, and batch interleavings. Ambient inputs — wall clocks, global
RNGs, unordered-container iteration order, reassociated float reductions
— are exactly the bugs that pass every unit test and then desynchronize
a serve node. This lint forbids them at the source level:

  wall-clock    std::chrono::{system,steady,high_resolution}_clock and
                C time APIs outside src/obs/ (the tracer owns wall time;
                everything else runs on util::SimClock).
  ambient-rng   rand/srand/std::random_device/std::mt19937* outside
                src/util/rng.* (randomness flows through seeded
                util::Rng streams, never process-global state).
  unordered-iter  iteration over std::unordered_{map,set} in the
                deterministic directories (src/codec, src/roi,
                src/serve, src/core) — iteration order is unspecified
                and varies across libstdc++ versions and hash seeds.
  float-reduce  order-unspecified float/double reductions (std::reduce,
                std::transform_reduce, parallel execution policies, omp
                reductions) in the deterministic directories — float
                addition does not reassociate.
  metric-name   string literals passed to MetricsRegistry::{counter,
                gauge,distribution} must be dot-separated
                <layer>.<subsystem>.<metric> with the layer prefix one
                of {agent, codec, net, edge, serve, roi, obs} — the
                prefix doubles as the trace category, and exports sort
                by name, so a stray scheme scatters one subsystem's
                metrics across the table.
  metric-concat string concatenation (`+`, std::to_string) in the name
                argument of a metric call — every call re-allocates the
                name and re-walks the registry map, which is exactly the
                per-frame hot-path cost the handle API exists to avoid.
                Compose dynamic names once, outside the recording path.

Escapes, in preference order:
  1. a `// dive-lint: allow(<rule>)` comment on the offending line;
  2. a `<rule> <path-prefix>` line in tools/dive_lint_allow.txt for
     whole-file/directory exemptions (kept deliberately short — every
     entry is a determinism argument someone must be able to defend).

The scanner is comment- and string-aware: matches inside comments and
string literals do not count (so this docstring cannot lint itself).
Exit 0 = clean, 1 = findings, 2 = usage error.

Usage:
  tools/dive_lint.py --root .            # lint <root>/src (the default)
  tools/dive_lint.py --root . --list-rules
"""

import argparse
import os
import re
import sys

# Directories (relative to --root) whose code must be bit-deterministic.
DETERMINISTIC_DIRS = ("src/codec", "src/roi", "src/serve", "src/core")

# Files scanned overall.
SOURCE_EXTENSIONS = (".cpp", ".h")

ALLOWLIST_FILE = os.path.join("tools", "dive_lint_allow.txt")

ESCAPE_RE = re.compile(r"dive-lint:\s*allow\(([a-z0-9-]+)\)")


class Rule:
    def __init__(self, name, description, pattern, applies, message):
        self.name = name
        self.description = description
        self.pattern = re.compile(pattern)
        self.applies = applies  # fn(relpath) -> bool
        self.message = message


def in_deterministic_dirs(relpath):
    return relpath.startswith(DETERMINISTIC_DIRS)


def outside(prefix):
    return lambda relpath: not relpath.startswith(prefix)


RULES = [
    Rule(
        "wall-clock",
        "wall-clock reads outside src/obs/ (use util::SimClock)",
        r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
        r"|\b(clock_gettime|gettimeofday|localtime|gmtime)\s*\("
        r"|\bstd::time\s*\(",
        outside("src/obs/"),
        "wall-clock read in a simulated-time codebase; only src/obs/ may "
        "touch real clocks",
    ),
    Rule(
        "ambient-rng",
        "ambient randomness outside src/util/rng.* (use util::Rng)",
        r"std::random_device|std::mt19937|std::default_random_engine"
        r"|\b(rand|srand|random)\s*\(\s*\)",
        outside("src/util/rng"),
        "ambient RNG; randomness must flow through seeded util::Rng "
        "streams (src/util/rng.h)",
    ),
    Rule(
        "float-reduce",
        "order-unspecified float reductions in deterministic directories",
        r"std::reduce\s*\(|std::transform_reduce\s*\("
        r"|std::execution::(par|par_unseq|unseq)"
        r"|#\s*pragma\s+omp\b[^\n]*reduction",
        in_deterministic_dirs,
        "order-unspecified reduction; float accumulation must run in a "
        "fixed sequential order on deterministic paths",
    ),
]

# Metric-call hygiene: the layer vocabulary of the metric naming scheme
# (DESIGN §15); the prefix before the first dot doubles as the trace
# category.
METRIC_LAYERS = ("agent", "codec", "net", "edge", "serve", "roi", "obs")
METRIC_CALL_RE = re.compile(r"\.\s*(counter|gauge|distribution)\s*\(")
METRIC_NAME_RE = re.compile(
    r"^(" + "|".join(METRIC_LAYERS) + r")(\.[a-z0-9_]+)+$"
)
METRIC_CONCAT_RE = re.compile(r"\+|\bto_string\s*\(")
STRING_LIT_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')

UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s*"
    r"&?\s*(\w+)\s*[;={(,)]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*([^)]*)\)")
UNORDERED_INLINE_RE = re.compile(r"std\s*::\s*unordered_(?:map|set)\b")


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving line
    structure and column positions (a crude but honest C++ lexer)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                m = re.match(r'R"([^(\s\\"]*)\(', text[i:])
                if m:
                    state = "raw"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * (len(m.group(0))))
                    i += len(m.group(0))
                else:
                    state = "str"
                    out.append(" ")
                    i += 1
            elif c == "'":
                state = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def load_allowlist(root):
    """Returns a list of (rule, path_prefix) exemptions."""
    path = os.path.join(root, ALLOWLIST_FILE)
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                sys.exit(
                    f"{path}:{lineno}: malformed allowlist entry "
                    f"(want '<rule> <path-prefix>'): {line!r}"
                )
            entries.append((parts[0], parts[1]))
    return entries


def allowed(allowlist, rule, relpath):
    return any(r == rule and relpath.startswith(p) for r, p in allowlist)


def check_unordered_iteration(relpath, stripped_lines):
    """Per-file heuristic for the unordered-iter rule: collect names
    declared with an unordered container type, then flag range-fors and
    explicit iterator walks over them (or over inline unordered
    expressions)."""
    findings = []
    declared = set()
    for line in stripped_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            declared.add(m.group(1))
    name_re = (
        re.compile(r"\b(" + "|".join(map(re.escape, sorted(declared))) + r")\b")
        if declared
        else None
    )
    for lineno, line in enumerate(stripped_lines, 1):
        for m in RANGE_FOR_RE.finditer(line):
            range_expr = m.group(1)
            if UNORDERED_INLINE_RE.search(range_expr) or (
                name_re and name_re.search(range_expr)
            ):
                findings.append(
                    (
                        lineno,
                        "iteration over std::unordered_{map,set}: order is "
                        "unspecified; use std::map, a sorted vector, or sort "
                        "the keys first",
                    )
                )
        if name_re:
            for name in name_re.findall(line):
                # .begin()/.cbegin() starts an ordered walk; .end() alone
                # is just the find()-lookup sentinel and stays legal.
                if re.search(
                    re.escape(name) + r"\s*\.\s*c?begin\s*\(", line
                ):
                    findings.append(
                        (
                            lineno,
                            f"iterator walk over unordered container "
                            f"'{name}': order is unspecified",
                        )
                    )
    return findings


def first_arg_region(stripped_lines, raw_lines, lineno, col):
    """Returns (stripped, raw) text of a call's first argument, scanning
    from just past the open paren at (lineno 1-based, col 0-based) across
    up to 4 physical lines. Terminates at the matching close paren or the
    first depth-1 comma. The stripper is column-preserving, so the same
    slice indexes both views: structure comes from the stripped text
    (parens inside string literals don't confuse the depth count), the
    literal contents from the raw text."""
    s_parts, r_parts = [], []
    depth = 1
    for k in range(4):
        idx = lineno - 1 + k
        if idx >= len(stripped_lines):
            break
        s = stripped_lines[idx]
        r = raw_lines[idx] if idx < len(raw_lines) else ""
        start = col if k == 0 else 0
        for i in range(start, len(s)):
            c = s[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    s_parts.append(s[start:i])
                    r_parts.append(r[start:i])
                    return "".join(s_parts), "".join(r_parts)
            elif c == "," and depth == 1:
                s_parts.append(s[start:i])
                r_parts.append(r[start:i])
                return "".join(s_parts), "".join(r_parts)
        s_parts.append(s[start:])
        r_parts.append(r[start:])
    return "".join(s_parts), "".join(r_parts)


def check_metric_calls(stripped_lines, raw_lines):
    """metric-name / metric-concat: validates the name argument of every
    MetricsRegistry::{counter,gauge,distribution} call. Only the first
    argument is inspected (the second is the free-form unit). A call
    whose first argument holds no string literal and no concatenation
    passes a pre-composed name — legal by construction."""
    findings = []
    for lineno, line in enumerate(stripped_lines, 1):
        for m in METRIC_CALL_RE.finditer(line):
            s_arg, r_arg = first_arg_region(
                stripped_lines, raw_lines, lineno, m.end()
            )
            if METRIC_CONCAT_RE.search(s_arg):
                findings.append(
                    (
                        lineno,
                        "metric-concat",
                        "metric name built by concatenation at the call "
                        "site; every record re-allocates the name and "
                        "re-walks the registry map — compose dynamic names "
                        "once, outside the recording path",
                    )
                )
                continue
            for lit in STRING_LIT_RE.findall(r_arg):
                if not METRIC_NAME_RE.match(lit):
                    findings.append(
                        (
                            lineno,
                            "metric-name",
                            f'metric name "{lit}" must be dot-separated '
                            "<layer>.<subsystem>.<metric> with the layer "
                            "one of {" + ", ".join(METRIC_LAYERS) + "}",
                        )
                    )
    return findings


def lint_file(root, relpath, allowlist):
    path = os.path.join(root, relpath)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        sys.exit(f"{relpath}: unreadable: {e}")

    raw_lines = text.splitlines()
    stripped_lines = strip_comments_and_strings(text).splitlines()
    # Line-level escapes are read from the RAW text (they live in
    # comments, which the stripper removes).
    escapes = {}
    for lineno, line in enumerate(raw_lines, 1):
        for m in ESCAPE_RE.finditer(line):
            escapes.setdefault(lineno, set()).add(m.group(1))

    findings = []

    def emit(rule_name, lineno, message):
        if rule_name in escapes.get(lineno, ()):
            return
        if allowed(allowlist, rule_name, relpath):
            return
        findings.append(f"{relpath}:{lineno}: {rule_name}: {message}")

    for rule in RULES:
        if not rule.applies(relpath):
            continue
        for lineno, line in enumerate(stripped_lines, 1):
            if rule.pattern.search(line):
                emit(rule.name, lineno, rule.message)

    if in_deterministic_dirs(relpath):
        for lineno, message in check_unordered_iteration(
            relpath, stripped_lines
        ):
            emit("unordered-iter", lineno, message)

    for lineno, rule_name, message in check_metric_calls(
        stripped_lines, raw_lines
    ):
        emit(rule_name, lineno, message)

    return findings


def iter_source_files(root, subdir="src"):
    base = os.path.join(root, subdir)
    if not os.path.isdir(base):
        sys.exit(f"{base}: not a directory (bad --root?)")
    for dirpath, _dirnames, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    args = ap.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.description}")
        print(
            "unordered-iter: iteration over std::unordered_{map,set} in "
            + ", ".join(DETERMINISTIC_DIRS)
        )
        print(
            "metric-name: metric name literals must be "
            "<layer>.<subsystem>.<metric>, layer in {"
            + ", ".join(METRIC_LAYERS)
            + "}"
        )
        print(
            "metric-concat: no string concatenation in the name argument "
            "of metric calls (hot-path allocation)"
        )
        return 0

    root = os.path.abspath(args.root)
    allowlist = load_allowlist(root)
    all_findings = []
    files = 0
    for relpath in iter_source_files(root):
        files += 1
        all_findings.extend(lint_file(root, relpath, allowlist))

    if all_findings:
        print(f"dive_lint: {len(all_findings)} finding(s):", file=sys.stderr)
        for finding in all_findings:
            print(f"  {finding}", file=sys.stderr)
        print(
            "\nsuppress a deliberate use with '// dive-lint: allow(<rule>)' "
            f"on the line, or a '<rule> <path>' entry in {ALLOWLIST_FILE}",
            file=sys.stderr,
        )
        return 1
    print(f"dive_lint: {files} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
