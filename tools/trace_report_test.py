#!/usr/bin/env python3
"""Self-test of tools/trace_report.py.

Feeds synthetic ledger/trace JSON through the report and asserts the
acceptance gates: a fully-attributed ledger passes --check, an
attribution gap fails it, a dropped frame without stage intervals fails
the autopsy gate, and a completed frame missing its flow arrows fails
the trace cross-check. Runs as ctest 'lint/trace_report_selftest'.
"""

import json
import os
import subprocess
import sys
import tempfile

REPORT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "trace_report.py"
)

PASSED = 0


def frame(session, idx, seq, capture, finished, outcome, stages,
          deadline=400000):
    return {
        "session": session,
        "frame": idx,
        "seq": seq,
        "capture_us": capture,
        "deadline_us": capture + deadline,
        "finished_us": finished,
        "outcome": outcome,
        "stages": [
            {"stage": s, "begin_us": b, "end_us": e} for s, b, e in stages
        ],
    }


# A healthy frame: stages tile [capture, finished] exactly.
GOOD_FRAME = frame(
    0, 0, 1, 0, 75000, "completed",
    [
        ("encode", 0, 16000),
        ("transmit", 16000, 36000),
        ("propagation", 36000, 46000),
        ("admission_wait", 46000, 46000),
        ("batch_wait", 46000, 50000),
        ("inference", 50000, 67000),
        ("result", 67000, 75000),
    ],
)

# 30 ms of its 75 ms budget unattributed (transmit interval missing).
GAPPY_FRAME = frame(
    0, 1, 2, 100000, 175000, "completed",
    [
        ("encode", 100000, 116000),
        ("propagation", 136000, 146000),
        ("inference", 150000, 167000),
        ("result", 167000, 175000),
    ],
)

# Dropped with no stage intervals at all: no autopsy cause.
CAUSELESS_DROP = frame(1, 0, 3, 200000, 240000, "dropped_deadline", [])

# Dropped, but the transmit interval names the cause.
CAUSED_DROP = frame(
    1, 1, 4, 300000, 340000, "dropped_uplink",
    [("encode", 300000, 316000), ("transmit", 316000, 340000)],
)


def ledger(frames):
    return {"schema": 1, "frames": frames}


def flow_chain(seq, phases):
    return [
        {"ph": p, "pid": 1, "tid": 3, "name": "frame", "cat": "flow",
         "id": seq, "ts": 1000 * i}
        for i, p in enumerate(phases)
    ]


def trace(events):
    return {"displayTimeUnit": "ms", "traceEvents": events}


def run_report(ledger_obj, trace_obj=None, check=True):
    d = tempfile.mkdtemp(prefix="trace_report_test_")
    lpath = os.path.join(d, "ledger.json")
    with open(lpath, "w") as f:
        json.dump(ledger_obj, f)
    cmd = [sys.executable, REPORT, "--ledger", lpath]
    if trace_obj is not None:
        tpath = os.path.join(d, "trace.json")
        with open(tpath, "w") as f:
            json.dump(trace_obj, f)
        cmd += ["--trace", tpath]
    if check:
        cmd.append("--check")
    return subprocess.run(cmd, capture_output=True, text=True)


def expect(name, proc, want_rc, needle=None):
    global PASSED
    if proc.returncode != want_rc:
        sys.exit(
            f"FAIL {name}: expected exit {want_rc}, got {proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    if needle is not None and needle not in proc.stdout + proc.stderr:
        sys.exit(
            f"FAIL {name}: expected {needle!r} in output\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    print(f"ok: {name}")
    PASSED += 1


expect(
    "fully attributed ledger passes --check",
    run_report(ledger([GOOD_FRAME, CAUSED_DROP])),
    0,
    needle="check OK",
)

expect(
    "report renders the waterfall and diagnosis",
    run_report(ledger([GOOD_FRAME, CAUSED_DROP]), check=False),
    0,
    needle="per-stage waterfall",
)

expect(
    "dropped frame's dominant stage named in the autopsy",
    run_report(ledger([GOOD_FRAME, CAUSED_DROP]), check=False),
    0,
    needle="dropped_uplink",
)

expect(
    "uplink-dominated misses diagnose as uplink-bound",
    run_report(ledger([GOOD_FRAME, CAUSED_DROP]), check=False),
    0,
    needle="uplink-bound",
)

expect(
    "attribution gap fails --check",
    run_report(ledger([GOOD_FRAME, GAPPY_FRAME])),
    1,
    needle="attribute only",
)

expect(
    "drop without stage intervals fails the autopsy gate",
    run_report(ledger([GOOD_FRAME, CAUSELESS_DROP])),
    1,
    needle="no dominant-stage cause",
)

expect(
    "complete flow chain passes the trace cross-check",
    run_report(
        ledger([GOOD_FRAME]),
        trace(flow_chain(1, ["s", "t", "f"])),
    ),
    0,
    needle="check OK",
)

expect(
    "completed frame without flow arrows fails the trace cross-check",
    run_report(ledger([GOOD_FRAME]), trace([])),
    1,
    needle="no flow arrows",
)

expect(
    "malformed flow chain (no terminating f) fails",
    run_report(
        ledger([GOOD_FRAME]),
        trace(flow_chain(1, ["s", "t", "t"])),
    ),
    1,
    needle="malformed",
)

expect(
    "flow id with no ledger frame fails",
    run_report(
        ledger([GOOD_FRAME]),
        trace(flow_chain(1, ["s", "f"]) + flow_chain(99, ["s", "f"])),
    ),
    1,
    needle="no matching ledger frame",
)

expect(
    "empty ledger is a usage error",
    run_report(ledger([])),
    2,
    needle="no frames",
)

print(f"trace_report self-test: {PASSED} cases passed")
