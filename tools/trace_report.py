#!/usr/bin/env python3
"""trace_report: renders DiVE's frame ledger (and optionally the Chrome
trace) into a per-stage latency waterfall and a deadline-miss autopsy.

Inputs are the deterministic observability exports (DESIGN §15):

  --ledger LEDGER.json   FrameLedger::write_json — one record per
                         captured frame: capture/deadline/finish times,
                         outcome, and the stage intervals (encode,
                         sidecar, uplink_queue, transmit, propagation,
                         admission_wait, batch_wait, inference, result).
  --trace TRACE.json     optional Tracer::write_chrome_json — used to
                         cross-check that the flow arrows ("frame" flow
                         events) cover the ledger's frames.

Report sections:
  waterfall   aggregate per-stage mean/p50/p99 and share of attributed
              time, with a proportional bar per stage in pipeline order;
  sessions    per-session outcome counts and e2e percentiles;
  autopsy     every dropped / late frame grouped by (outcome, dominant
              stage), plus the worst offenders with per-frame waterfalls;
  diagnosis   one line naming the bottleneck regime: where the p99
              frame's budget went and what that means for the deployment
              (node-saturated vs uplink-bound vs inference-bound ...).

--check turns the report into an acceptance gate (exit 1 on failure):
  - every terminal frame's stage intervals attribute >= 95% of its
    end-to-end latency (nothing unexplained in the budget);
  - every dropped or deadline-missing frame carries a dominant-stage
    cause;
  - with --trace: every multi-span frame's flow id appears as a flow
    event chain (s/t/f) in the trace.

Exit codes: 0 ok, 1 check failure, 2 usage/input error.
"""

import argparse
import json
import sys

# Pipeline order; must match obs::FrameStage (frame_ledger.h).
STAGES = [
    "encode",
    "sidecar",
    "uplink_queue",
    "transmit",
    "propagation",
    "admission_wait",
    "batch_wait",
    "inference",
    "result",
]

DROP_OUTCOMES = {"dropped_uplink", "dropped_queue", "dropped_deadline"}
MISS_OUTCOMES = DROP_OUTCOMES | {"completed_late"}

# What a dominant stage says about the deployment when frames miss their
# deadline there. Keyed by stage; the value is the overload diagnosis.
DIAGNOSES = {
    "encode": "agent-bound: the encoder eats the budget before upload",
    "sidecar": "agent-bound: sidecar serialization dominates",
    "uplink_queue": "uplink-bound: frames queue behind earlier transmits "
    "(bandwidth below the encoded bitrate)",
    "transmit": "uplink-bound: serialization time dominates "
    "(bandwidth too low for the frame size)",
    "propagation": "network-bound: propagation delay dominates",
    "admission_wait": "node-saturated: frames wait for a free "
    "worker+batch window (add workers or shed sessions)",
    "batch_wait": "batching-bound: the batch window adds more wait than "
    "it amortizes (shrink window or batch size)",
    "inference": "inference-bound: model latency dominates "
    "(smaller model or faster accelerator)",
    "result": "downlink-bound: returning results dominates",
}


def die(msg):
    print(f"trace_report: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"unreadable {what} {path!r}: {e}")


def percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


class Frame:
    def __init__(self, rec):
        self.session = rec["session"]
        self.frame = rec["frame"]
        self.seq = rec["seq"]
        self.capture = rec["capture_us"]
        self.deadline = rec["deadline_us"]
        self.finished = rec["finished_us"]
        self.outcome = rec["outcome"]
        self.stage_ms = {}
        for s in rec["stages"]:
            self.stage_ms[s["stage"]] = (s["end_us"] - s["begin_us"]) / 1000.0

    @property
    def e2e_ms(self):
        if self.outcome == "pending":
            return 0.0
        return (self.finished - self.capture) / 1000.0

    @property
    def attributed_ms(self):
        return sum(self.stage_ms.values())

    @property
    def dominant(self):
        """(stage, ms) of the longest recorded stage, pipeline order on
        ties; (None, 0) when nothing was recorded."""
        best, best_ms = None, -1.0
        for s in STAGES:
            ms = self.stage_ms.get(s)
            if ms is not None and ms > best_ms:
                best, best_ms = s, ms
        return best, max(best_ms, 0.0)

    @property
    def attribution(self):
        """Fraction of e2e latency the stages explain (1.0 when e2e=0)."""
        e2e = self.e2e_ms
        return self.attributed_ms / e2e if e2e > 0 else 1.0


def bar(value, maximum, width=32):
    if maximum <= 0:
        return ""
    n = int(round(width * value / maximum))
    return "#" * max(0, min(width, n))


def print_waterfall(frames):
    print("== per-stage waterfall (all frames that visited the stage) ==")
    per_stage = {s: [] for s in STAGES}
    for fr in frames:
        for s, ms in fr.stage_ms.items():
            per_stage.setdefault(s, []).append(ms)
    total_attr = sum(sum(v) for v in per_stage.values())
    means = {
        s: (sum(v) / len(v) if v else 0.0) for s, v in per_stage.items()
    }
    max_mean = max(means.values(), default=0.0)
    header = (
        f"{'stage':<15} {'frames':>6} {'mean_ms':>8} {'p50_ms':>8} "
        f"{'p99_ms':>8} {'share':>6}"
    )
    print(header)
    print("-" * (len(header) + 34))
    for s in STAGES:
        vals = sorted(per_stage.get(s, []))
        if not vals:
            continue
        mean = means[s]
        share = 100.0 * sum(vals) / total_attr if total_attr > 0 else 0.0
        print(
            f"{s:<15} {len(vals):>6} {mean:>8.3f} "
            f"{percentile(vals, 0.50):>8.3f} {percentile(vals, 0.99):>8.3f} "
            f"{share:>5.1f}%  {bar(mean, max_mean)}"
        )
    print()


def print_sessions(frames):
    print("== per-session outcomes and latency ==")
    sessions = {}
    for fr in frames:
        sessions.setdefault(fr.session, []).append(fr)
    header = (
        f"{'session':>7} {'frames':>6} {'done':>5} {'late':>5} {'drop':>5} "
        f"{'e2e_mean':>9} {'e2e_p95':>8}"
    )
    print(header)
    print("-" * len(header))
    for sid in sorted(sessions):
        frs = sessions[sid]
        done = sum(1 for f in frs if f.outcome == "completed")
        late = sum(1 for f in frs if f.outcome == "completed_late")
        drop = sum(1 for f in frs if f.outcome in DROP_OUTCOMES)
        e2e = sorted(f.e2e_ms for f in frs if f.outcome not in ("pending",))
        mean = sum(e2e) / len(e2e) if e2e else 0.0
        print(
            f"{sid:>7} {len(frs):>6} {done:>5} {late:>5} {drop:>5} "
            f"{mean:>9.1f} {percentile(e2e, 0.95):>8.1f}"
        )
    print()


def print_autopsy(frames, top):
    missed = [f for f in frames if f.outcome in MISS_OUTCOMES]
    print(
        f"== deadline-miss autopsy: {len(missed)} dropped/late of "
        f"{len(frames)} frames =="
    )
    if not missed:
        print("every frame completed within its deadline")
        print()
        return
    rollup = {}
    for fr in missed:
        stage, _ = fr.dominant
        key = (fr.outcome, stage or "<none>")
        rollup[key] = rollup.get(key, 0) + 1
    for (outcome, stage), count in sorted(
        rollup.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {count:>5}  {outcome:<17} dominated by {stage}")
    worst = sorted(missed, key=lambda f: -f.dominant[1])[:top]
    if worst:
        print(f"\n  worst {len(worst)} offenders:")
        for fr in worst:
            stage, ms = fr.dominant
            print(
                f"    s{fr.session} f{fr.frame} {fr.outcome}: "
                f"{stage} ate {ms:.1f} ms of {fr.e2e_ms:.1f} ms"
            )
            max_ms = max(fr.stage_ms.values(), default=0.0)
            for s in STAGES:
                if s in fr.stage_ms:
                    print(
                        f"      {s:<15} {fr.stage_ms[s]:>8.3f} ms  "
                        f"{bar(fr.stage_ms[s], max_ms, 24)}"
                    )
    print()


def print_diagnosis(frames):
    missed = [f for f in frames if f.outcome in MISS_OUTCOMES]
    print("== diagnosis ==")
    if not missed:
        completed = [f for f in frames if f.outcome == "completed"]
        if completed:
            e2e = sorted(f.e2e_ms for f in completed)
            print(
                f"healthy: {len(completed)} frames completed in time "
                f"(e2e p95 {percentile(e2e, 0.95):.1f} ms); no overload"
            )
        else:
            print("no terminal frames recorded")
        print()
        return
    # Where did the missed frames' time actually go?
    stage_totals = {}
    for fr in missed:
        for s, ms in fr.stage_ms.items():
            stage_totals[s] = stage_totals.get(s, 0.0) + ms
    dominant = max(
        STAGES,
        key=lambda s: (stage_totals.get(s, 0.0), -STAGES.index(s)),
    )
    share = (
        100.0 * stage_totals.get(dominant, 0.0) / sum(stage_totals.values())
        if stage_totals
        else 0.0
    )
    print(
        f"{len(missed)}/{len(frames)} frames dropped or late; "
        f"'{dominant}' holds {share:.0f}% of their attributed time"
    )
    print(f"=> {DIAGNOSES.get(dominant, 'unclassified bottleneck')}")
    print()


def check_trace_flows(trace, frames):
    """Flow arrows vs. ledger: every flow-event chain must be well formed
    (s ... f, >= 2 members) and belong to a minted frame, and every
    completed frame must have a chain (a completed frame always crosses
    tracks: encode on the agent/session track, service on the edge/serve
    side). Returns error strings."""
    events = trace.get("traceEvents", [])
    flow_phases = {}  # flow id -> ph sequence in file order
    for ev in events:
        if ev.get("cat") == "flow":
            flow_phases.setdefault(ev["id"], []).append(ev["ph"])
    errors = []
    by_seq = {f.seq: f for f in frames}
    for flow_id, phases in sorted(flow_phases.items()):
        if flow_id not in by_seq:
            errors.append(
                f"flow id {flow_id} has no matching ledger frame"
            )
        if len(phases) < 2 or phases[0] != "s" or phases[-1] != "f" or any(
            p != "t" for p in phases[1:-1]
        ):
            errors.append(
                f"flow chain for seq {flow_id} malformed: {phases}"
            )
    for fr in frames:
        if fr.outcome in ("completed", "completed_late") and (
            fr.seq not in flow_phases
        ):
            errors.append(
                f"completed frame s{fr.session} f{fr.frame} (seq {fr.seq}) "
                f"has no flow arrows in the trace"
            )
    return errors


def run_checks(frames, trace):
    errors = []
    for fr in frames:
        if fr.outcome == "pending":
            continue
        if fr.e2e_ms > 0 and fr.attribution < 0.95:
            errors.append(
                f"frame s{fr.session} f{fr.frame}: stages attribute only "
                f"{100.0 * fr.attribution:.1f}% of {fr.e2e_ms:.1f} ms e2e"
            )
    for fr in frames:
        if fr.outcome not in MISS_OUTCOMES:
            continue
        stage, ms = fr.dominant
        if stage is None or (ms <= 0.0 and fr.e2e_ms > 0.0):
            errors.append(
                f"frame s{fr.session} f{fr.frame} ({fr.outcome}): no "
                f"dominant-stage cause recorded"
            )
    if trace is not None:
        errors.extend(check_trace_flows(trace, frames))
    return errors


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--ledger", required=True, help="FrameLedger JSON")
    ap.add_argument("--trace", help="Chrome trace JSON (flow cross-check)")
    ap.add_argument(
        "--check",
        action="store_true",
        help="enforce attribution/autopsy/flow invariants (exit 1 on fail)",
    )
    ap.add_argument(
        "--top", type=int, default=3, help="worst offenders to detail"
    )
    args = ap.parse_args()

    ledger = load_json(args.ledger, "ledger")
    if ledger.get("schema") != 1:
        die(f"unsupported ledger schema {ledger.get('schema')!r}")
    frames = [Frame(rec) for rec in ledger.get("frames", [])]
    if not frames:
        die("ledger holds no frames")
    trace = load_json(args.trace, "trace") if args.trace else None

    terminal = [f for f in frames if f.outcome != "pending"]
    attributed = sum(f.attributed_ms for f in terminal)
    e2e = sum(f.e2e_ms for f in terminal)
    print(
        f"ledger: {len(frames)} frames ({len(terminal)} terminal), "
        f"{100.0 * attributed / e2e if e2e > 0 else 100.0:.1f}% of "
        f"end-to-end latency attributed to named stages\n"
    )
    print_waterfall(frames)
    print_sessions(frames)
    print_autopsy(frames, args.top)
    print_diagnosis(frames)

    if args.check:
        errors = run_checks(frames, trace)
        if errors:
            print(f"check FAILED ({len(errors)} violations):")
            for e in errors[:20]:
                print(f"  {e}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
            return 1
        checks = "attribution>=95%, autopsy causes"
        if trace is not None:
            checks += ", flow chains"
        print(f"check OK ({checks})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
