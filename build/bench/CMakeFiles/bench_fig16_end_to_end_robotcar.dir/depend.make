# Empty dependencies file for bench_fig16_end_to_end_robotcar.
# This may be replaced when dependencies are built.
