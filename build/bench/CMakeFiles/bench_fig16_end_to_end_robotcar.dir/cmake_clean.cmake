file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_end_to_end_robotcar.dir/bench_fig16_end_to_end_robotcar.cpp.o"
  "CMakeFiles/bench_fig16_end_to_end_robotcar.dir/bench_fig16_end_to_end_robotcar.cpp.o.d"
  "bench_fig16_end_to_end_robotcar"
  "bench_fig16_end_to_end_robotcar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_end_to_end_robotcar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
