file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_foreground.dir/bench_fig12_foreground.cpp.o"
  "CMakeFiles/bench_fig12_foreground.dir/bench_fig12_foreground.cpp.o.d"
  "bench_fig12_foreground"
  "bench_fig12_foreground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_foreground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
