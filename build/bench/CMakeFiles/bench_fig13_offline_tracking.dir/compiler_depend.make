# Empty compiler generated dependencies file for bench_fig13_offline_tracking.
# This may be replaced when dependencies are built.
