
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_k_sweep.cpp" "bench/CMakeFiles/bench_fig10_k_sweep.dir/bench_fig10_k_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_fig10_k_sweep.dir/bench_fig10_k_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dive_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dive_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dive_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dive_data.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/dive_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dive_net.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dive_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dive_video.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dive_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
