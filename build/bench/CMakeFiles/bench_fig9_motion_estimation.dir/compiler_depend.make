# Empty compiler generated dependencies file for bench_fig9_motion_estimation.
# This may be replaced when dependencies are built.
