# Empty dependencies file for bench_fig6_ego_motion.
# This may be replaced when dependencies are built.
