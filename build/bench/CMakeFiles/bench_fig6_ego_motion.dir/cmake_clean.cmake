file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ego_motion.dir/bench_fig6_ego_motion.cpp.o"
  "CMakeFiles/bench_fig6_ego_motion.dir/bench_fig6_ego_motion.cpp.o.d"
  "bench_fig6_ego_motion"
  "bench_fig6_ego_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ego_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
