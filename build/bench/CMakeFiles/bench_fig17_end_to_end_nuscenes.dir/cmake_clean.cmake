file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_end_to_end_nuscenes.dir/bench_fig17_end_to_end_nuscenes.cpp.o"
  "CMakeFiles/bench_fig17_end_to_end_nuscenes.dir/bench_fig17_end_to_end_nuscenes.cpp.o.d"
  "bench_fig17_end_to_end_nuscenes"
  "bench_fig17_end_to_end_nuscenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_end_to_end_nuscenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
