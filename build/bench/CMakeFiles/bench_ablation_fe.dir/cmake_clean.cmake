file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fe.dir/bench_ablation_fe.cpp.o"
  "CMakeFiles/bench_ablation_fe.dir/bench_ablation_fe.cpp.o.d"
  "bench_ablation_fe"
  "bench_ablation_fe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
