# Empty dependencies file for bench_ablation_fe.
# This may be replaced when dependencies are built.
