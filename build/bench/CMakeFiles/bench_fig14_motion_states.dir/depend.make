# Empty dependencies file for bench_fig14_motion_states.
# This may be replaced when dependencies are built.
