file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_motion_states.dir/bench_fig14_motion_states.cpp.o"
  "CMakeFiles/bench_fig14_motion_states.dir/bench_fig14_motion_states.cpp.o.d"
  "bench_fig14_motion_states"
  "bench_fig14_motion_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_motion_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
