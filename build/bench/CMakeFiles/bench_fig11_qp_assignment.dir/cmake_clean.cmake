file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_qp_assignment.dir/bench_fig11_qp_assignment.cpp.o"
  "CMakeFiles/bench_fig11_qp_assignment.dir/bench_fig11_qp_assignment.cpp.o.d"
  "bench_fig11_qp_assignment"
  "bench_fig11_qp_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_qp_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
