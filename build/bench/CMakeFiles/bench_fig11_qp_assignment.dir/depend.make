# Empty dependencies file for bench_fig11_qp_assignment.
# This may be replaced when dependencies are built.
