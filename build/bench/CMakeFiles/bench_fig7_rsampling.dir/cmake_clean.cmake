file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_rsampling.dir/bench_fig7_rsampling.cpp.o"
  "CMakeFiles/bench_fig7_rsampling.dir/bench_fig7_rsampling.cpp.o.d"
  "bench_fig7_rsampling"
  "bench_fig7_rsampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rsampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
