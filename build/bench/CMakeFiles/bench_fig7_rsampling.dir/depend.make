# Empty dependencies file for bench_fig7_rsampling.
# This may be replaced when dependencies are built.
