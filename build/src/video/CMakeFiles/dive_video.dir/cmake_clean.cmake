file(REMOVE_RECURSE
  "CMakeFiles/dive_video.dir/frame.cpp.o"
  "CMakeFiles/dive_video.dir/frame.cpp.o.d"
  "CMakeFiles/dive_video.dir/image_ops.cpp.o"
  "CMakeFiles/dive_video.dir/image_ops.cpp.o.d"
  "CMakeFiles/dive_video.dir/imu.cpp.o"
  "CMakeFiles/dive_video.dir/imu.cpp.o.d"
  "CMakeFiles/dive_video.dir/renderer.cpp.o"
  "CMakeFiles/dive_video.dir/renderer.cpp.o.d"
  "CMakeFiles/dive_video.dir/scene.cpp.o"
  "CMakeFiles/dive_video.dir/scene.cpp.o.d"
  "CMakeFiles/dive_video.dir/trajectory.cpp.o"
  "CMakeFiles/dive_video.dir/trajectory.cpp.o.d"
  "libdive_video.a"
  "libdive_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
