file(REMOVE_RECURSE
  "libdive_video.a"
)
