# Empty compiler generated dependencies file for dive_video.
# This may be replaced when dependencies are built.
