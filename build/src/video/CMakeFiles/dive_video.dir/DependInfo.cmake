
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/frame.cpp" "src/video/CMakeFiles/dive_video.dir/frame.cpp.o" "gcc" "src/video/CMakeFiles/dive_video.dir/frame.cpp.o.d"
  "/root/repo/src/video/image_ops.cpp" "src/video/CMakeFiles/dive_video.dir/image_ops.cpp.o" "gcc" "src/video/CMakeFiles/dive_video.dir/image_ops.cpp.o.d"
  "/root/repo/src/video/imu.cpp" "src/video/CMakeFiles/dive_video.dir/imu.cpp.o" "gcc" "src/video/CMakeFiles/dive_video.dir/imu.cpp.o.d"
  "/root/repo/src/video/renderer.cpp" "src/video/CMakeFiles/dive_video.dir/renderer.cpp.o" "gcc" "src/video/CMakeFiles/dive_video.dir/renderer.cpp.o.d"
  "/root/repo/src/video/scene.cpp" "src/video/CMakeFiles/dive_video.dir/scene.cpp.o" "gcc" "src/video/CMakeFiles/dive_video.dir/scene.cpp.o.d"
  "/root/repo/src/video/trajectory.cpp" "src/video/CMakeFiles/dive_video.dir/trajectory.cpp.o" "gcc" "src/video/CMakeFiles/dive_video.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/dive_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
