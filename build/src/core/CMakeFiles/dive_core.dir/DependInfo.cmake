
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cpp" "src/core/CMakeFiles/dive_core.dir/agent.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/agent.cpp.o.d"
  "/root/repo/src/core/bandwidth_estimator.cpp" "src/core/CMakeFiles/dive_core.dir/bandwidth_estimator.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/bandwidth_estimator.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/dive_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/foe_estimator.cpp" "src/core/CMakeFiles/dive_core.dir/foe_estimator.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/foe_estimator.cpp.o.d"
  "/root/repo/src/core/foreground_extractor.cpp" "src/core/CMakeFiles/dive_core.dir/foreground_extractor.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/foreground_extractor.cpp.o.d"
  "/root/repo/src/core/ground_estimator.cpp" "src/core/CMakeFiles/dive_core.dir/ground_estimator.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/ground_estimator.cpp.o.d"
  "/root/repo/src/core/offline_tracker.cpp" "src/core/CMakeFiles/dive_core.dir/offline_tracker.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/offline_tracker.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/dive_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/qp_assigner.cpp" "src/core/CMakeFiles/dive_core.dir/qp_assigner.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/qp_assigner.cpp.o.d"
  "/root/repo/src/core/rotation_estimator.cpp" "src/core/CMakeFiles/dive_core.dir/rotation_estimator.cpp.o" "gcc" "src/core/CMakeFiles/dive_core.dir/rotation_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/dive_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/dive_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dive_net.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dive_video.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dive_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
