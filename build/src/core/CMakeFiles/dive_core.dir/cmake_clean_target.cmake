file(REMOVE_RECURSE
  "libdive_core.a"
)
