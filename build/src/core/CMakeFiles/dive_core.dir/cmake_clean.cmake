file(REMOVE_RECURSE
  "CMakeFiles/dive_core.dir/agent.cpp.o"
  "CMakeFiles/dive_core.dir/agent.cpp.o.d"
  "CMakeFiles/dive_core.dir/bandwidth_estimator.cpp.o"
  "CMakeFiles/dive_core.dir/bandwidth_estimator.cpp.o.d"
  "CMakeFiles/dive_core.dir/clustering.cpp.o"
  "CMakeFiles/dive_core.dir/clustering.cpp.o.d"
  "CMakeFiles/dive_core.dir/foe_estimator.cpp.o"
  "CMakeFiles/dive_core.dir/foe_estimator.cpp.o.d"
  "CMakeFiles/dive_core.dir/foreground_extractor.cpp.o"
  "CMakeFiles/dive_core.dir/foreground_extractor.cpp.o.d"
  "CMakeFiles/dive_core.dir/ground_estimator.cpp.o"
  "CMakeFiles/dive_core.dir/ground_estimator.cpp.o.d"
  "CMakeFiles/dive_core.dir/offline_tracker.cpp.o"
  "CMakeFiles/dive_core.dir/offline_tracker.cpp.o.d"
  "CMakeFiles/dive_core.dir/preprocess.cpp.o"
  "CMakeFiles/dive_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/dive_core.dir/qp_assigner.cpp.o"
  "CMakeFiles/dive_core.dir/qp_assigner.cpp.o.d"
  "CMakeFiles/dive_core.dir/rotation_estimator.cpp.o"
  "CMakeFiles/dive_core.dir/rotation_estimator.cpp.o.d"
  "libdive_core.a"
  "libdive_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
