# Empty compiler generated dependencies file for dive_core.
# This may be replaced when dependencies are built.
