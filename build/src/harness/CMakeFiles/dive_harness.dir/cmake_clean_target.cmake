file(REMOVE_RECURSE
  "libdive_harness.a"
)
