# Empty compiler generated dependencies file for dive_harness.
# This may be replaced when dependencies are built.
