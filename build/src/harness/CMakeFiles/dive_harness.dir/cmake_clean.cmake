file(REMOVE_RECURSE
  "CMakeFiles/dive_harness.dir/experiment.cpp.o"
  "CMakeFiles/dive_harness.dir/experiment.cpp.o.d"
  "libdive_harness.a"
  "libdive_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
