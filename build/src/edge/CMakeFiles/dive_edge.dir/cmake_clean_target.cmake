file(REMOVE_RECURSE
  "libdive_edge.a"
)
