# Empty dependencies file for dive_edge.
# This may be replaced when dependencies are built.
