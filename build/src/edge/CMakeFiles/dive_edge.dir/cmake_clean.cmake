file(REMOVE_RECURSE
  "CMakeFiles/dive_edge.dir/detector.cpp.o"
  "CMakeFiles/dive_edge.dir/detector.cpp.o.d"
  "CMakeFiles/dive_edge.dir/evaluator.cpp.o"
  "CMakeFiles/dive_edge.dir/evaluator.cpp.o.d"
  "CMakeFiles/dive_edge.dir/server.cpp.o"
  "CMakeFiles/dive_edge.dir/server.cpp.o.d"
  "libdive_edge.a"
  "libdive_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
