file(REMOVE_RECURSE
  "CMakeFiles/dive_baselines.dir/dds.cpp.o"
  "CMakeFiles/dive_baselines.dir/dds.cpp.o.d"
  "CMakeFiles/dive_baselines.dir/eaar.cpp.o"
  "CMakeFiles/dive_baselines.dir/eaar.cpp.o.d"
  "CMakeFiles/dive_baselines.dir/keyframe_scheme.cpp.o"
  "CMakeFiles/dive_baselines.dir/keyframe_scheme.cpp.o.d"
  "CMakeFiles/dive_baselines.dir/o3.cpp.o"
  "CMakeFiles/dive_baselines.dir/o3.cpp.o.d"
  "CMakeFiles/dive_baselines.dir/raw_stream.cpp.o"
  "CMakeFiles/dive_baselines.dir/raw_stream.cpp.o.d"
  "libdive_baselines.a"
  "libdive_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
