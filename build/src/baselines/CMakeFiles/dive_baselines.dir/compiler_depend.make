# Empty compiler generated dependencies file for dive_baselines.
# This may be replaced when dependencies are built.
