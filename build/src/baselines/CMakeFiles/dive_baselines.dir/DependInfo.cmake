
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dds.cpp" "src/baselines/CMakeFiles/dive_baselines.dir/dds.cpp.o" "gcc" "src/baselines/CMakeFiles/dive_baselines.dir/dds.cpp.o.d"
  "/root/repo/src/baselines/eaar.cpp" "src/baselines/CMakeFiles/dive_baselines.dir/eaar.cpp.o" "gcc" "src/baselines/CMakeFiles/dive_baselines.dir/eaar.cpp.o.d"
  "/root/repo/src/baselines/keyframe_scheme.cpp" "src/baselines/CMakeFiles/dive_baselines.dir/keyframe_scheme.cpp.o" "gcc" "src/baselines/CMakeFiles/dive_baselines.dir/keyframe_scheme.cpp.o.d"
  "/root/repo/src/baselines/o3.cpp" "src/baselines/CMakeFiles/dive_baselines.dir/o3.cpp.o" "gcc" "src/baselines/CMakeFiles/dive_baselines.dir/o3.cpp.o.d"
  "/root/repo/src/baselines/raw_stream.cpp" "src/baselines/CMakeFiles/dive_baselines.dir/raw_stream.cpp.o" "gcc" "src/baselines/CMakeFiles/dive_baselines.dir/raw_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dive_core.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/dive_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dive_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dive_net.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dive_video.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dive_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
