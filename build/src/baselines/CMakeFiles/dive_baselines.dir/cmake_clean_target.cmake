file(REMOVE_RECURSE
  "libdive_baselines.a"
)
