# Empty dependencies file for dive_net.
# This may be replaced when dependencies are built.
