file(REMOVE_RECURSE
  "libdive_net.a"
)
