file(REMOVE_RECURSE
  "CMakeFiles/dive_net.dir/bandwidth.cpp.o"
  "CMakeFiles/dive_net.dir/bandwidth.cpp.o.d"
  "CMakeFiles/dive_net.dir/uplink.cpp.o"
  "CMakeFiles/dive_net.dir/uplink.cpp.o.d"
  "libdive_net.a"
  "libdive_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
