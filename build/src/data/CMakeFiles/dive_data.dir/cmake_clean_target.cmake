file(REMOVE_RECURSE
  "libdive_data.a"
)
