file(REMOVE_RECURSE
  "CMakeFiles/dive_data.dir/dataset.cpp.o"
  "CMakeFiles/dive_data.dir/dataset.cpp.o.d"
  "libdive_data.a"
  "libdive_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
