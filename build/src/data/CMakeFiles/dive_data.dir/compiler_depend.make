# Empty compiler generated dependencies file for dive_data.
# This may be replaced when dependencies are built.
