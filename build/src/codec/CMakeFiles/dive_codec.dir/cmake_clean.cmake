file(REMOVE_RECURSE
  "CMakeFiles/dive_codec.dir/bitstream.cpp.o"
  "CMakeFiles/dive_codec.dir/bitstream.cpp.o.d"
  "CMakeFiles/dive_codec.dir/dct.cpp.o"
  "CMakeFiles/dive_codec.dir/dct.cpp.o.d"
  "CMakeFiles/dive_codec.dir/decoder.cpp.o"
  "CMakeFiles/dive_codec.dir/decoder.cpp.o.d"
  "CMakeFiles/dive_codec.dir/encoder.cpp.o"
  "CMakeFiles/dive_codec.dir/encoder.cpp.o.d"
  "CMakeFiles/dive_codec.dir/motion_search.cpp.o"
  "CMakeFiles/dive_codec.dir/motion_search.cpp.o.d"
  "CMakeFiles/dive_codec.dir/quant.cpp.o"
  "CMakeFiles/dive_codec.dir/quant.cpp.o.d"
  "libdive_codec.a"
  "libdive_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
