
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cpp" "src/codec/CMakeFiles/dive_codec.dir/bitstream.cpp.o" "gcc" "src/codec/CMakeFiles/dive_codec.dir/bitstream.cpp.o.d"
  "/root/repo/src/codec/dct.cpp" "src/codec/CMakeFiles/dive_codec.dir/dct.cpp.o" "gcc" "src/codec/CMakeFiles/dive_codec.dir/dct.cpp.o.d"
  "/root/repo/src/codec/decoder.cpp" "src/codec/CMakeFiles/dive_codec.dir/decoder.cpp.o" "gcc" "src/codec/CMakeFiles/dive_codec.dir/decoder.cpp.o.d"
  "/root/repo/src/codec/encoder.cpp" "src/codec/CMakeFiles/dive_codec.dir/encoder.cpp.o" "gcc" "src/codec/CMakeFiles/dive_codec.dir/encoder.cpp.o.d"
  "/root/repo/src/codec/motion_search.cpp" "src/codec/CMakeFiles/dive_codec.dir/motion_search.cpp.o" "gcc" "src/codec/CMakeFiles/dive_codec.dir/motion_search.cpp.o.d"
  "/root/repo/src/codec/quant.cpp" "src/codec/CMakeFiles/dive_codec.dir/quant.cpp.o" "gcc" "src/codec/CMakeFiles/dive_codec.dir/quant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/dive_video.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dive_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
