# Empty compiler generated dependencies file for dive_codec.
# This may be replaced when dependencies are built.
