file(REMOVE_RECURSE
  "libdive_codec.a"
)
