file(REMOVE_RECURSE
  "CMakeFiles/dive_util.dir/histogram.cpp.o"
  "CMakeFiles/dive_util.dir/histogram.cpp.o.d"
  "CMakeFiles/dive_util.dir/logging.cpp.o"
  "CMakeFiles/dive_util.dir/logging.cpp.o.d"
  "CMakeFiles/dive_util.dir/rng.cpp.o"
  "CMakeFiles/dive_util.dir/rng.cpp.o.d"
  "CMakeFiles/dive_util.dir/stats.cpp.o"
  "CMakeFiles/dive_util.dir/stats.cpp.o.d"
  "CMakeFiles/dive_util.dir/table.cpp.o"
  "CMakeFiles/dive_util.dir/table.cpp.o.d"
  "CMakeFiles/dive_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dive_util.dir/thread_pool.cpp.o.d"
  "libdive_util.a"
  "libdive_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
