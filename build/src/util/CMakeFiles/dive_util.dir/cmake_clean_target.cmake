file(REMOVE_RECURSE
  "libdive_util.a"
)
