# Empty dependencies file for dive_util.
# This may be replaced when dependencies are built.
