# Empty dependencies file for dive_geom.
# This may be replaced when dependencies are built.
