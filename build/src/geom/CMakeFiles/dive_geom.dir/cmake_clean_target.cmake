file(REMOVE_RECURSE
  "libdive_geom.a"
)
