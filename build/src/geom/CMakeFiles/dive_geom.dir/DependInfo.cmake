
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cpp" "src/geom/CMakeFiles/dive_geom.dir/box.cpp.o" "gcc" "src/geom/CMakeFiles/dive_geom.dir/box.cpp.o.d"
  "/root/repo/src/geom/convex_hull.cpp" "src/geom/CMakeFiles/dive_geom.dir/convex_hull.cpp.o" "gcc" "src/geom/CMakeFiles/dive_geom.dir/convex_hull.cpp.o.d"
  "/root/repo/src/geom/least_squares.cpp" "src/geom/CMakeFiles/dive_geom.dir/least_squares.cpp.o" "gcc" "src/geom/CMakeFiles/dive_geom.dir/least_squares.cpp.o.d"
  "/root/repo/src/geom/pinhole_camera.cpp" "src/geom/CMakeFiles/dive_geom.dir/pinhole_camera.cpp.o" "gcc" "src/geom/CMakeFiles/dive_geom.dir/pinhole_camera.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/geom/CMakeFiles/dive_geom.dir/polygon.cpp.o" "gcc" "src/geom/CMakeFiles/dive_geom.dir/polygon.cpp.o.d"
  "/root/repo/src/geom/triangle_threshold.cpp" "src/geom/CMakeFiles/dive_geom.dir/triangle_threshold.cpp.o" "gcc" "src/geom/CMakeFiles/dive_geom.dir/triangle_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
