file(REMOVE_RECURSE
  "CMakeFiles/dive_geom.dir/box.cpp.o"
  "CMakeFiles/dive_geom.dir/box.cpp.o.d"
  "CMakeFiles/dive_geom.dir/convex_hull.cpp.o"
  "CMakeFiles/dive_geom.dir/convex_hull.cpp.o.d"
  "CMakeFiles/dive_geom.dir/least_squares.cpp.o"
  "CMakeFiles/dive_geom.dir/least_squares.cpp.o.d"
  "CMakeFiles/dive_geom.dir/pinhole_camera.cpp.o"
  "CMakeFiles/dive_geom.dir/pinhole_camera.cpp.o.d"
  "CMakeFiles/dive_geom.dir/polygon.cpp.o"
  "CMakeFiles/dive_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/dive_geom.dir/triangle_threshold.cpp.o"
  "CMakeFiles/dive_geom.dir/triangle_threshold.cpp.o.d"
  "libdive_geom.a"
  "libdive_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dive_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
