# Empty dependencies file for driving_analytics.
# This may be replaced when dependencies are built.
