file(REMOVE_RECURSE
  "CMakeFiles/driving_analytics.dir/driving_analytics.cpp.o"
  "CMakeFiles/driving_analytics.dir/driving_analytics.cpp.o.d"
  "driving_analytics"
  "driving_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driving_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
