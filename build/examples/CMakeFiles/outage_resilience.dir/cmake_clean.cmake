file(REMOVE_RECURSE
  "CMakeFiles/outage_resilience.dir/outage_resilience.cpp.o"
  "CMakeFiles/outage_resilience.dir/outage_resilience.cpp.o.d"
  "outage_resilience"
  "outage_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
