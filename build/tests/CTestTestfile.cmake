# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/threading_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
