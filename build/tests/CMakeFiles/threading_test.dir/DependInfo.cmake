
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codec/parallel_encoder_test.cpp" "tests/CMakeFiles/threading_test.dir/codec/parallel_encoder_test.cpp.o" "gcc" "tests/CMakeFiles/threading_test.dir/codec/parallel_encoder_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/threading_test.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/threading_test.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/dive_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dive_video.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dive_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
