file(REMOVE_RECURSE
  "CMakeFiles/video_test.dir/video/frame_test.cpp.o"
  "CMakeFiles/video_test.dir/video/frame_test.cpp.o.d"
  "CMakeFiles/video_test.dir/video/image_ops_test.cpp.o"
  "CMakeFiles/video_test.dir/video/image_ops_test.cpp.o.d"
  "CMakeFiles/video_test.dir/video/imu_test.cpp.o"
  "CMakeFiles/video_test.dir/video/imu_test.cpp.o.d"
  "CMakeFiles/video_test.dir/video/renderer_test.cpp.o"
  "CMakeFiles/video_test.dir/video/renderer_test.cpp.o.d"
  "CMakeFiles/video_test.dir/video/scene_test.cpp.o"
  "CMakeFiles/video_test.dir/video/scene_test.cpp.o.d"
  "CMakeFiles/video_test.dir/video/trajectory_test.cpp.o"
  "CMakeFiles/video_test.dir/video/trajectory_test.cpp.o.d"
  "video_test"
  "video_test.pdb"
  "video_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
