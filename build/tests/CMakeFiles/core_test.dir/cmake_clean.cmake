file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/bandwidth_estimator_test.cpp.o"
  "CMakeFiles/core_test.dir/core/bandwidth_estimator_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/clustering_test.cpp.o"
  "CMakeFiles/core_test.dir/core/clustering_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/foe_estimator_test.cpp.o"
  "CMakeFiles/core_test.dir/core/foe_estimator_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/foreground_extractor_test.cpp.o"
  "CMakeFiles/core_test.dir/core/foreground_extractor_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ground_estimator_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ground_estimator_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/motion_model_test.cpp.o"
  "CMakeFiles/core_test.dir/core/motion_model_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/offline_tracker_test.cpp.o"
  "CMakeFiles/core_test.dir/core/offline_tracker_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/preprocess_test.cpp.o"
  "CMakeFiles/core_test.dir/core/preprocess_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/qp_assigner_test.cpp.o"
  "CMakeFiles/core_test.dir/core/qp_assigner_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/rotation_estimator_test.cpp.o"
  "CMakeFiles/core_test.dir/core/rotation_estimator_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
