
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bandwidth_estimator_test.cpp" "tests/CMakeFiles/core_test.dir/core/bandwidth_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/bandwidth_estimator_test.cpp.o.d"
  "/root/repo/tests/core/clustering_test.cpp" "tests/CMakeFiles/core_test.dir/core/clustering_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/clustering_test.cpp.o.d"
  "/root/repo/tests/core/foe_estimator_test.cpp" "tests/CMakeFiles/core_test.dir/core/foe_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/foe_estimator_test.cpp.o.d"
  "/root/repo/tests/core/foreground_extractor_test.cpp" "tests/CMakeFiles/core_test.dir/core/foreground_extractor_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/foreground_extractor_test.cpp.o.d"
  "/root/repo/tests/core/ground_estimator_test.cpp" "tests/CMakeFiles/core_test.dir/core/ground_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ground_estimator_test.cpp.o.d"
  "/root/repo/tests/core/motion_model_test.cpp" "tests/CMakeFiles/core_test.dir/core/motion_model_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/motion_model_test.cpp.o.d"
  "/root/repo/tests/core/offline_tracker_test.cpp" "tests/CMakeFiles/core_test.dir/core/offline_tracker_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/offline_tracker_test.cpp.o.d"
  "/root/repo/tests/core/preprocess_test.cpp" "tests/CMakeFiles/core_test.dir/core/preprocess_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/preprocess_test.cpp.o.d"
  "/root/repo/tests/core/qp_assigner_test.cpp" "tests/CMakeFiles/core_test.dir/core/qp_assigner_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/qp_assigner_test.cpp.o.d"
  "/root/repo/tests/core/rotation_estimator_test.cpp" "tests/CMakeFiles/core_test.dir/core/rotation_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rotation_estimator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dive_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dive_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dive_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dive_data.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/dive_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dive_net.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dive_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dive_video.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dive_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
