file(REMOVE_RECURSE
  "CMakeFiles/codec_test.dir/codec/bitstream_test.cpp.o"
  "CMakeFiles/codec_test.dir/codec/bitstream_test.cpp.o.d"
  "CMakeFiles/codec_test.dir/codec/dct_test.cpp.o"
  "CMakeFiles/codec_test.dir/codec/dct_test.cpp.o.d"
  "CMakeFiles/codec_test.dir/codec/motion_search_test.cpp.o"
  "CMakeFiles/codec_test.dir/codec/motion_search_test.cpp.o.d"
  "CMakeFiles/codec_test.dir/codec/quant_test.cpp.o"
  "CMakeFiles/codec_test.dir/codec/quant_test.cpp.o.d"
  "CMakeFiles/codec_test.dir/codec/rate_control_test.cpp.o"
  "CMakeFiles/codec_test.dir/codec/rate_control_test.cpp.o.d"
  "CMakeFiles/codec_test.dir/codec/roundtrip_test.cpp.o"
  "CMakeFiles/codec_test.dir/codec/roundtrip_test.cpp.o.d"
  "codec_test"
  "codec_test.pdb"
  "codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
