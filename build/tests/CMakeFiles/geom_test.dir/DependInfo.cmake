
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geom/box_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/box_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/box_test.cpp.o.d"
  "/root/repo/tests/geom/camera_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/camera_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/camera_test.cpp.o.d"
  "/root/repo/tests/geom/convex_hull_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/convex_hull_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/convex_hull_test.cpp.o.d"
  "/root/repo/tests/geom/least_squares_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/least_squares_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/least_squares_test.cpp.o.d"
  "/root/repo/tests/geom/polygon_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/polygon_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/polygon_test.cpp.o.d"
  "/root/repo/tests/geom/ransac_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/ransac_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/ransac_test.cpp.o.d"
  "/root/repo/tests/geom/triangle_threshold_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/triangle_threshold_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/triangle_threshold_test.cpp.o.d"
  "/root/repo/tests/geom/vec_test.cpp" "tests/CMakeFiles/geom_test.dir/geom/vec_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/vec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dive_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dive_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dive_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dive_data.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/dive_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dive_net.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dive_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/dive_video.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dive_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dive_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
