file(REMOVE_RECURSE
  "CMakeFiles/geom_test.dir/geom/box_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/box_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/camera_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/camera_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/convex_hull_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/convex_hull_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/least_squares_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/least_squares_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/polygon_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/polygon_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/ransac_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/ransac_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/triangle_threshold_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/triangle_threshold_test.cpp.o.d"
  "CMakeFiles/geom_test.dir/geom/vec_test.cpp.o"
  "CMakeFiles/geom_test.dir/geom/vec_test.cpp.o.d"
  "geom_test"
  "geom_test.pdb"
  "geom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
